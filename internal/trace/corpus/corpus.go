// Package corpus implements CBWC, the columnar on-disk trace corpus
// format: a container for captured event streams that replays at memory
// bandwidth with zero per-event allocations and is shareable between
// cbwsd workers by content address instead of by re-sending bytes.
//
// Where the CBWT stream (internal/trace) interleaves every field of
// every event, CBWC stores a trace as fixed-size blocks of per-field
// columnar arrays. Replay mmaps the file where the platform allows it
// (an io.ReaderAt fallback covers the rest) and decodes each block
// straight into a reusable []trace.Event batch, so the steady state is
// a pointer walk over page-cache memory — no bufio, no per-event reads,
// no allocation.
//
// # On-disk layout (CBWC version 1)
//
// All fixed-width integers are little-endian. "uvarint" and "varint"
// are the encoding/binary variable-length encodings.
//
//	header:
//	  magic       [4]byte  "CBWC"
//	  version     u8       1
//	  flags       u8       bit 0: block payloads are DEFLATE-compressed
//	  reserved    [2]byte  zero
//	  blockEvents u32      events per full block (last block may be short)
//	  nameLen     uvarint  + name bytes (the trace/workload name)
//
//	blocks: each block's payload is the concatenation of six columns,
//	  in this order, optionally DEFLATE-compressed as one unit:
//	    kinds: 1 byte per event (trace.Kind)
//	    pc:    zigzag-varint PC delta per Load/Store/Branch event,
//	           against the previous such event (block-local, seeded
//	           from the index entry's basePC)
//	    addr:  zigzag-varint Addr delta per Load/Store event, seeded
//	           from the index entry's baseAddr
//	    n:     uvarint dynamic instruction count per Instr event
//	           (the stream codec's normalization applies: N=0 encodes
//	           as 1)
//	    block: uvarint static block ID per BlockBegin/BlockEnd event
//	    taken: branch outcomes bit-packed LSB-first, one bit per
//	           Branch event
//
//	index: one fixed-width 60-byte entry per block:
//	  offset    u64      file offset of the block payload
//	  storedLen u32      payload bytes on disk (compressed size)
//	  rawLen    u32      payload bytes after decompression
//	  events    u32      events in the block
//	  colLen    [6]u32   per-column byte lengths; they sum to rawLen
//	  basePC    u64      PC delta baseline entering the block
//	  baseAddr  u64      Addr delta baseline entering the block
//
//	trailer (fixed 48 bytes, at EOF):
//	  indexOff   u64
//	  indexLen   u64
//	  blockCount u64
//	  eventCount u64
//	  instrCount u64     total dynamic instructions in the corpus
//	  magicEnd   [8]byte "CBWCEND\x01"
//
// Because blocks carry their own delta baselines they decode
// independently: a reader can seek to any block, and corrupt bytes are
// contained to the block they occupy.
//
// # Content address
//
// The content address of a corpus is the SHA-256 over its exact file
// bytes. The writer is strictly serial and allocates no iteration-order
// freedom (no maps, no wall-clock values, no padding), so packing the
// same event stream with the same options produces byte-identical files
// — and therefore the same address — on every platform and at every
// harness parallelism level. The address is how corpus blobs slot into
// the cbwsd result-cache keying: a job over a corpus-backed workload
// hashes the corpus address into its job key, so two daemons pointed at
// byte-identical corpora share cached results and two different corpora
// can never alias.
package corpus

import (
	"encoding/binary"
	"errors"
)

const (
	magic      = "CBWC"
	magicEnd   = "CBWCEND\x01"
	version    = 1
	trailerLen = 5*8 + len(magicEnd)
	indexEntry = 8 + 4 + 4 + 4 + 6*4 + 8 + 8 // 60 bytes

	// flagCompressed marks DEFLATE-compressed block payloads.
	flagCompressed = 1 << 0

	// DefaultBlockEvents is the default events-per-block. 4096 events
	// keep the decode batch (~192KB of trace.Event) streaming through
	// L2 while amortizing the per-block index and virtual-call overhead
	// to noise; it is also the random-access and compression granule.
	DefaultBlockEvents = 4096

	// MaxBlockEvents bounds the per-block event count a reader will
	// accept, capping the decode-buffer allocation a hostile header can
	// demand.
	MaxBlockEvents = 1 << 20

	// maxNameLen bounds the header name, mirroring the stream codec.
	maxNameLen = 1 << 16
)

// ErrBadCorpus reports a structurally invalid corpus file.
var ErrBadCorpus = errors.New("corpus: malformed corpus file")

// column indices into blockEntry.colLen.
const (
	colKinds = iota
	colPC
	colAddr
	colN
	colBlock
	colTaken
	numCols
)

// blockEntry is one decoded index entry.
type blockEntry struct {
	offset    uint64
	storedLen uint32
	rawLen    uint32
	events    uint32
	colLen    [numCols]uint32
	basePC    uint64
	baseAddr  uint64
}

// marshal appends the fixed-width wire form of e to dst.
func (e *blockEntry) marshal(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, e.offset)
	dst = binary.LittleEndian.AppendUint32(dst, e.storedLen)
	dst = binary.LittleEndian.AppendUint32(dst, e.rawLen)
	dst = binary.LittleEndian.AppendUint32(dst, e.events)
	for _, l := range e.colLen {
		dst = binary.LittleEndian.AppendUint32(dst, l)
	}
	dst = binary.LittleEndian.AppendUint64(dst, e.basePC)
	dst = binary.LittleEndian.AppendUint64(dst, e.baseAddr)
	return dst
}

// unmarshal decodes one fixed-width index entry.
func (e *blockEntry) unmarshal(src []byte) {
	e.offset = binary.LittleEndian.Uint64(src[0:])
	e.storedLen = binary.LittleEndian.Uint32(src[8:])
	e.rawLen = binary.LittleEndian.Uint32(src[12:])
	e.events = binary.LittleEndian.Uint32(src[16:])
	for i := range e.colLen {
		e.colLen[i] = binary.LittleEndian.Uint32(src[20+4*i:])
	}
	e.basePC = binary.LittleEndian.Uint64(src[44:])
	e.baseAddr = binary.LittleEndian.Uint64(src[52:])
}

// zigzag encodes a signed delta into the unsigned space varints like.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
//
//cbws:hotpath
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

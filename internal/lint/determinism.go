package lint

import (
	"go/ast"
	"go/types"

	"cbws/internal/lint/analysis"
)

// Determinism guards the packages whose output lands in golden
// manifests, figures, and run records: results there must be
// bit-identical across runs and across -par settings, so the analyzer
// flags the constructs that historically break that —
//
//   - ranging over a map while producing ordered output (writes,
//     prints, hashes) or while appending to a slice that is never
//     sorted afterwards in the same function;
//   - time.Now (wall-clock values leak into output);
//   - the unseeded global math/rand source;
//   - sort.Slice, which is not stable: equal elements land in
//     observation order, so only a total-order comparator is safe and
//     sort.SliceStable (or a total-order key) is required.
//
// The driver scopes it to internal/{sim,harness,report,stats,service},
// internal/prefetch/learned, internal/trace/corpus, and cmd/figures;
// fixture tests run it everywhere. internal/service is in scope
// because its cached run records are compared byte-for-byte across
// daemons — the one legitimate wall-clock read (job duration
// telemetry) carries an explicit waiver. internal/trace/corpus is in
// scope because corpus files are content-addressed: any nondeterminism
// in the writer would silently fracture the shared result cache.
// internal/prefetch/learned is in scope because both learned schemes
// sit on the golden roster: a map iteration or unseeded random draw in
// a table dump or replay path would break the pinned manifests.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag map-iteration-order leaks, wall-clock reads, unseeded " +
		"randomness, and unstable sorts in golden-output packages",
	Scope: []string{
		"cbws/internal/sim",
		"cbws/internal/harness",
		"cbws/internal/report",
		"cbws/internal/stats",
		"cbws/internal/service",
		"cbws/internal/prefetch/learned",
		"cbws/internal/trace/corpus",
		"cbws/cmd/figures",
	},
	Run: runDeterminism,
}

// randConstructors are the math/rand(/v2) package-level functions that
// build explicitly seeded sources rather than drawing from the global
// one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDeterminism(pass, fd)
		}
	}
	return nil
}

func checkDeterminism(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			fn := calleeOf(info, e)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "time", "Now"):
				pass.Reportf(e.Pos(), "time.Now in a golden-output package: wall-clock values are nondeterministic")
			case pkgPathHasSuffix(fn.Pkg(), "math/rand") || pkgPathHasSuffix(fn.Pkg(), "math/rand/v2"):
				if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
					pass.Reportf(e.Pos(), "rand.%s draws from the unseeded global source; use a seeded rand.New(rand.NewSource(...))", fn.Name())
				}
			case isPkgFunc(fn, "sort", "Slice"):
				pass.Reportf(e.Pos(), "sort.Slice is not stable; use sort.SliceStable or sort by a total-order key")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					checkMapRangeBody(pass, fd, e)
				}
			}
		}
		return true
	})
}

// checkMapRangeBody flags order-dependent effects inside a
// range-over-map body. Appending map elements to a slice is the one
// sanctioned pattern — but only when the slice is sorted later in the
// same function, which restores a canonical order.
func checkMapRangeBody(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				target := rootIdent(info, call.Args[0])
				if target == nil {
					return true
				}
				if target.Pos() > rng.Pos() && target.Pos() < rng.End() {
					return true // loop-local accumulator: scoped to one iteration
				}
				if !sortedLater(pass, fd, rng, target) {
					pass.Reportf(call.Pos(),
						"append to %q inside range over map leaks iteration order; sort it afterwards or iterate sorted keys", target.Name())
				}
				return true
			}
		}
		// Resolve interface methods too: a Write on an io.Writer is
		// exactly the ordered-output shape this check exists for.
		fn := methodOf(info, call)
		if fn == nil {
			return true
		}
		if orderedOutputCall(fn) {
			pass.Reportf(call.Pos(),
				"%s inside range over map emits output in map iteration order", fn.Name())
		}
		return true
	})
}

// orderedOutputCall reports whether fn writes to an ordered byte
// stream: fmt printers and Write*/Sum-style methods.
func orderedOutputCall(fn *types.Func) bool {
	if pkgPathHasSuffix(fn.Pkg(), "fmt") {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Sum":
		return true
	}
	return false
}

// sortedLater reports whether obj is passed to a sort call after the
// range statement within the same function body.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || !(pkgPathHasSuffix(fn.Pkg(), "sort") || pkgPathHasSuffix(fn.Pkg(), "slices")) {
			return true
		}
		for _, arg := range call.Args {
			if rootIdent(info, arg) == obj {
				found = true
			}
		}
		return true
	})
	return found
}

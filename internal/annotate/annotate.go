// Package annotate implements the paper's compiler pass: it discovers
// innermost tight loops in a mini-IR program (via internal/cfg) and
// wraps their iterations in BLOCK_BEGIN / BLOCK_END marker instructions,
// assigning each static loop a unique code block identifier.
//
// The markers are placed so that one dynamic block spans exactly one
// loop iteration:
//
//   - BlockBegin at the loop header entry (executed on loop entry and on
//     every back-edge arrival);
//   - BlockEnd immediately before the latch terminator (the iteration's
//     last action whether the back edge is taken or not);
//   - BlockEnd at every exit landing block, closing iterations that
//     leave the loop from a non-latch block (break-style exits). At run
//     time an unmatched BlockEnd is a no-op, so shared landing pads are
//     safe.
//
// Because annotation happens on the loop structure rather than on
// address patterns, the markers survive transformations such as
// unrolling that restructure the body but preserve the loop — the
// property Section IV-A attributes to compile-time annotation.
package annotate

import (
	"fmt"
	"sort"

	"cbws/internal/cfg"
	"cbws/internal/ir"
)

// DefaultMaxStatic is the default tightness threshold: innermost loops
// with at most this many static instructions are annotated. Tight loop
// bodies in the paper's benchmarks are a few dozen instructions.
const DefaultMaxStatic = 64

// Annotation records one annotated loop.
type Annotation struct {
	BlockID      int
	Header       int // header block ID in the original CFG
	Latch        int
	StaticInstrs int
}

// Result is the output of the pass.
type Result struct {
	Prog  *ir.Program // annotated program
	Loops []Annotation
}

type insertion struct {
	pos  int // insert before original instruction index pos
	ord  int // ordering among insertions at the same pos (End before Begin)
	inst ir.Instr
}

// Annotate runs the pass with the given tightness threshold (0 uses
// DefaultMaxStatic). The input program must not already contain block
// markers.
func Annotate(p *ir.Program, maxStatic int) (*Result, error) {
	if maxStatic == 0 {
		maxStatic = DefaultMaxStatic
	}
	for i, in := range p.Instrs {
		if in.Op == ir.BlockBegin || in.Op == ir.BlockEnd {
			return nil, fmt.Errorf("annotate: %q instr %d already annotated", p.Name, i)
		}
	}
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	loops := cfg.Innermost(g.Loops())

	var res Result
	var ins []insertion
	nextID := 0
	for _, l := range loops {
		if l.StaticInstrs > maxStatic {
			continue
		}
		id := nextID
		nextID++
		res.Loops = append(res.Loops, Annotation{
			BlockID:      id,
			Header:       l.Header,
			Latch:        l.Latch,
			StaticInstrs: l.StaticInstrs,
		})
		header := g.Blocks[l.Header]
		ins = append(ins, insertion{
			pos:  header.Start,
			ord:  1,
			inst: ir.Instr{Op: ir.BlockBegin, Imm: int64(id)},
		})
		latch := g.Blocks[l.Latch]
		endPos := latch.End
		if last := p.Instrs[latch.End-1]; last.Op.IsTerminator() {
			endPos = latch.End - 1
		}
		ins = append(ins, insertion{
			pos:  endPos,
			ord:  0,
			inst: ir.Instr{Op: ir.BlockEnd, Imm: int64(id)},
		})
		for _, edge := range g.ExitEdges(l) {
			landing := g.Blocks[edge[1]]
			ins = append(ins, insertion{
				pos:  landing.Start,
				ord:  0,
				inst: ir.Instr{Op: ir.BlockEnd, Imm: int64(id)},
			})
		}
	}

	res.Prog = rebuild(p, ins)
	if err := res.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("annotate: internal error: %w", err)
	}
	return &res, nil
}

// rebuild interleaves the insertions into the instruction stream and
// remaps branch targets. A branch to original index T lands on the first
// instruction inserted at T, so marker instructions at a block entry
// execute on every arrival.
func rebuild(p *ir.Program, ins []insertion) *ir.Program {
	sort.SliceStable(ins, func(i, j int) bool {
		if ins[i].pos != ins[j].pos {
			return ins[i].pos < ins[j].pos
		}
		return ins[i].ord < ins[j].ord
	})
	// before[i] = number of insertions with pos < i (computed lazily by walk).
	out := make([]ir.Instr, 0, len(p.Instrs)+len(ins))
	newIndex := make([]int, len(p.Instrs)+1) // original index -> index of first insertion at it (or itself)
	k := 0
	for i := 0; i <= len(p.Instrs); i++ {
		newIndex[i] = len(out)
		for k < len(ins) && ins[k].pos == i {
			out = append(out, ins[k].inst)
			k++
		}
		if i < len(p.Instrs) {
			out = append(out, p.Instrs[i])
		}
	}
	for i := range out {
		if out[i].Op.IsBranch() {
			out[i].Target = newIndex[out[i].Target]
		}
	}
	return &ir.Program{Name: p.Name, Instrs: out, NumRegs: p.NumRegs}
}

// Package ir defines a small register-based intermediate representation
// used to reproduce the paper's compiler side: kernels are written (or
// lowered) into this IR, the internal/cfg package discovers their loop
// structure, the internal/annotate pass wraps innermost tight loops in
// BLOCK_BEGIN/BLOCK_END markers, and internal/interp executes the result
// into the annotated trace the simulator consumes.
//
// The IR is deliberately minimal: flat instruction list, virtual
// registers holding int64 values, absolute branch targets. Loads and
// stores address a byte-addressed memory through a register plus an
// immediate offset.
package ir

import (
	"fmt"
)

// Reg is a virtual register index.
type Reg int

// Opcode enumerates IR operations.
type Opcode uint8

const (
	// Nop does nothing.
	Nop Opcode = iota
	// Const sets Dst = Imm.
	Const
	// Mov sets Dst = A.
	Mov
	// Add sets Dst = A + B.
	Add
	// AddI sets Dst = A + Imm.
	AddI
	// Sub sets Dst = A - B.
	Sub
	// Mul sets Dst = A * B.
	Mul
	// MulI sets Dst = A * Imm.
	MulI
	// Div sets Dst = A / B (B==0 yields 0).
	Div
	// Mod sets Dst = A % B (B==0 yields 0).
	Mod
	// And sets Dst = A & B.
	And
	// Shl sets Dst = A << (B & 63).
	Shl
	// Shr sets Dst = uint64(A) >> (B & 63).
	Shr
	// Xor sets Dst = A ^ B.
	Xor
	// CmpLT sets Dst = 1 if A < B else 0.
	CmpLT
	// CmpEQ sets Dst = 1 if A == B else 0.
	CmpEQ
	// Jmp branches unconditionally to Target.
	Jmp
	// BrNZ branches to Target if A != 0.
	BrNZ
	// BrZ branches to Target if A == 0.
	BrZ
	// Load sets Dst = memory[A + Imm] (byte address, 8-byte word).
	Load
	// Store sets memory[A + Imm] = B.
	Store
	// Ret ends execution.
	Ret
	// BlockBegin marks the start of annotated code block Imm. Inserted
	// by the annotation pass; hand-written programs normally omit it.
	BlockBegin
	// BlockEnd marks the end of annotated code block Imm.
	BlockEnd
)

var opNames = map[Opcode]string{
	Nop: "nop", Const: "const", Mov: "mov", Add: "add", AddI: "addi",
	Sub: "sub", Mul: "mul", MulI: "muli", Div: "div", Mod: "mod",
	And: "and", Shl: "shl", Shr: "shr", Xor: "xor",
	CmpLT: "cmplt", CmpEQ: "cmpeq",
	Jmp: "jmp", BrNZ: "brnz", BrZ: "brz",
	Load: "load", Store: "store", Ret: "ret",
	BlockBegin: "block_begin", BlockEnd: "block_end",
}

func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBranch reports whether op transfers control.
func (op Opcode) IsBranch() bool { return op == Jmp || op == BrNZ || op == BrZ }

// IsTerminator reports whether op ends a basic block.
func (op Opcode) IsTerminator() bool { return op.IsBranch() || op == Ret }

// Instr is one IR instruction.
type Instr struct {
	Op     Opcode
	Dst    Reg
	A, B   Reg
	Imm    int64
	Target int // branch target: instruction index
}

func (in Instr) String() string {
	switch in.Op {
	case Const:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case Mov:
		return fmt.Sprintf("r%d = r%d", in.Dst, in.A)
	case AddI, MulI:
		return fmt.Sprintf("r%d = %v r%d, %d", in.Dst, in.Op, in.A, in.Imm)
	case Add, Sub, Mul, Div, Mod, And, Shl, Shr, Xor, CmpLT, CmpEQ:
		return fmt.Sprintf("r%d = %v r%d, r%d", in.Dst, in.Op, in.A, in.B)
	case Jmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case BrNZ:
		return fmt.Sprintf("brnz r%d, @%d", in.A, in.Target)
	case BrZ:
		return fmt.Sprintf("brz r%d, @%d", in.A, in.Target)
	case Load:
		return fmt.Sprintf("r%d = load [r%d+%d]", in.Dst, in.A, in.Imm)
	case Store:
		return fmt.Sprintf("store [r%d+%d], r%d", in.A, in.Imm, in.B)
	case BlockBegin, BlockEnd:
		return fmt.Sprintf("%v %d", in.Op, in.Imm)
	default:
		return in.Op.String()
	}
}

// Program is a flat IR function.
type Program struct {
	Name   string
	Instrs []Instr
	// NumRegs is the register file size; registers are r0..NumRegs-1.
	NumRegs int
}

// Validate checks structural invariants: targets in range, registers in
// range, and a terminating instruction reachable from every fallthrough
// (the last instruction must be a terminator).
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("ir: program %q is empty", p.Name)
	}
	checkReg := func(i int, r Reg, what string) error {
		if r < 0 || int(r) >= p.NumRegs {
			return fmt.Errorf("ir: %q instr %d: %s register r%d out of range [0,%d)", p.Name, i, what, r, p.NumRegs)
		}
		return nil
	}
	for i, in := range p.Instrs {
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("ir: %q instr %d: branch target %d out of range", p.Name, i, in.Target)
			}
		}
		switch in.Op {
		case Const:
			if err := checkReg(i, in.Dst, "dst"); err != nil {
				return err
			}
		case Mov, AddI, MulI, Load:
			if err := checkReg(i, in.Dst, "dst"); err != nil {
				return err
			}
			if err := checkReg(i, in.A, "src"); err != nil {
				return err
			}
		case Add, Sub, Mul, Div, Mod, And, Shl, Shr, Xor, CmpLT, CmpEQ:
			if err := checkReg(i, in.Dst, "dst"); err != nil {
				return err
			}
			if err := checkReg(i, in.A, "a"); err != nil {
				return err
			}
			if err := checkReg(i, in.B, "b"); err != nil {
				return err
			}
		case BrNZ, BrZ:
			if err := checkReg(i, in.A, "cond"); err != nil {
				return err
			}
		case Store:
			if err := checkReg(i, in.A, "addr"); err != nil {
				return err
			}
			if err := checkReg(i, in.B, "val"); err != nil {
				return err
			}
		}
	}
	last := p.Instrs[len(p.Instrs)-1].Op
	if !last.IsTerminator() {
		return fmt.Errorf("ir: %q must end in a terminator, ends in %v", p.Name, last)
	}
	return nil
}

// String disassembles the program.
func (p *Program) String() string {
	s := fmt.Sprintf("program %q (%d regs)\n", p.Name, p.NumRegs)
	for i, in := range p.Instrs {
		s += fmt.Sprintf("%4d: %v\n", i, in)
	}
	return s
}

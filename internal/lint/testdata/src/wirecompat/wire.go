// Package wirecompat is the fixture for the cbws/wirecompat analyzer:
// the committed compat.json matches this contract exactly, so the
// analyzer reports nothing.
package wirecompat

const (
	PathJobs  = "/v1/jobs"
	KeySchema = "fix-job/1"
)

type Status string

const (
	StatusQueued Status = "queued"
	StatusDone   Status = "done"
)

type JobView struct {
	Key    string `json:"key"`
	Status Status `json:"status"`
}

type JobSpec struct {
	Workload string `json:"workload"`
}

// Key builds the canonical content-address payload; the anonymous
// struct's field schema is part of the frozen contract.
func (s JobSpec) Key(codeVersion string) string {
	payload := struct {
		Schema      string `json:"schema"`
		CodeVersion string `json:"code_version"`
		Workload    string `json:"workload"`
	}{KeySchema, codeVersion, s.Workload}
	return payload.Schema + payload.Workload
}

package interp

import (
	"errors"
	"testing"

	"cbws/internal/ir"
	"cbws/internal/mem"
	"cbws/internal/trace"
)

func run(t *testing.T, p *ir.Program, init func(m *Machine)) (*Machine, *trace.Trace) {
	t.Helper()
	m, err := New(p, 1_000_000)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if init != nil {
		init(m)
	}
	tr := trace.New(p.Name)
	if err := m.Run(tr); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m, tr
}

func TestArithmetic(t *testing.T) {
	b := ir.NewBuilder("arith")
	a := b.Const(10)
	c := b.Const(3)
	sum := b.Reg()
	diff := b.Reg()
	prod := b.Reg()
	quot := b.Reg()
	rem := b.Reg()
	sh := b.Reg()
	b.Add(sum, a, c)
	b.Sub(diff, a, c)
	b.Mul(prod, a, c)
	b.Div(quot, a, c)
	b.Mod(rem, a, c)
	b.Shl(sh, a, c)
	out := b.Const(1 << 16)
	b.Store(out, 0, sum)
	b.Store(out, 8, diff)
	b.Store(out, 16, prod)
	b.Store(out, 24, quot)
	b.Store(out, 32, rem)
	b.Store(out, 40, sh)
	b.Ret()
	m, _ := run(t, b.MustBuild(), nil)
	want := map[mem.Addr]int64{
		1 << 16: 13, 1<<16 + 8: 7, 1<<16 + 16: 30,
		1<<16 + 24: 3, 1<<16 + 32: 1, 1<<16 + 40: 80,
	}
	for addr, v := range want {
		if got := m.Word(addr); got != v {
			t.Errorf("word[%#x] = %d, want %d", addr, got, v)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	b := ir.NewBuilder("divz")
	a := b.Const(10)
	z := b.Const(0)
	q := b.Reg()
	r := b.Reg()
	b.Div(q, a, z)
	b.Mod(r, a, z)
	out := b.Const(1 << 16)
	b.Store(out, 0, q)
	b.Store(out, 8, r)
	b.Ret()
	m, _ := run(t, b.MustBuild(), nil)
	if m.Word(1<<16) != 0 || m.Word(1<<16+8) != 0 {
		t.Error("div/mod by zero should produce 0")
	}
}

func TestLoadStoreThroughMemory(t *testing.T) {
	b := ir.NewBuilder("mem")
	addr := b.Const(0x8000)
	v := b.Reg()
	w := b.Reg()
	b.Load(v, addr, 0) // reads pre-initialized word
	b.AddI(w, v, 5)
	b.Store(addr, 8, w)
	b.Ret()
	m, tr := run(t, b.MustBuild(), func(m *Machine) { m.SetWord(0x8000, 37) })
	if got := m.Word(0x8008); got != 42 {
		t.Errorf("stored %d, want 42", got)
	}
	// Trace contains a load then a store with correct addresses.
	var memEvents []trace.Event
	for _, e := range tr.Events {
		if e.IsMem() {
			memEvents = append(memEvents, e)
		}
	}
	if len(memEvents) != 2 || memEvents[0].Kind != trace.Load || memEvents[1].Kind != trace.Store {
		t.Fatalf("mem events: %v", memEvents)
	}
	if memEvents[0].Addr != 0x8000 || memEvents[1].Addr != 0x8008 {
		t.Errorf("addresses: %#x %#x", memEvents[0].Addr, memEvents[1].Addr)
	}
}

func TestDistinctPCsPerStaticInstruction(t *testing.T) {
	b := ir.NewBuilder("pcs")
	a1 := b.Const(0x1000)
	a2 := b.Const(0x2000)
	v := b.Reg()
	b.Load(v, a1, 0)
	b.Load(v, a2, 0)
	b.Ret()
	_, tr := run(t, b.MustBuild(), nil)
	var pcs []uint64
	for _, e := range tr.Events {
		if e.Kind == trace.Load {
			pcs = append(pcs, e.PC)
		}
	}
	if len(pcs) != 2 || pcs[0] == pcs[1] {
		t.Errorf("pcs = %v, want two distinct", pcs)
	}
	if pcs[0] < PCBase {
		t.Errorf("pc %#x below PCBase", pcs[0])
	}
}

func TestInstrBatching(t *testing.T) {
	b := ir.NewBuilder("batch")
	r := b.Const(0)
	for i := 0; i < 10; i++ {
		b.AddI(r, r, 1)
	}
	addr := b.Const(0x4000)
	v := b.Reg()
	b.Load(v, addr, 0)
	b.Ret()
	_, tr := run(t, b.MustBuild(), nil)
	// All leading ALU ops must batch into one Instr event before the load.
	if tr.Events[0].Kind != trace.Instr || tr.Events[0].Count() < 10 {
		t.Errorf("first event = %v", tr.Events[0])
	}
}

func TestLoopExecution(t *testing.T) {
	// Sum 1..10 via a loop.
	b := ir.NewBuilder("sumloop")
	i := b.Const(0)
	n := b.Const(10)
	sum := b.Const(0)
	cond := b.Reg()
	b.Label("head")
	b.CmpLT(cond, i, n)
	b.BrZ(cond, "exit")
	b.AddI(i, i, 1)
	b.Add(sum, sum, i)
	b.Jmp("head")
	b.Label("exit")
	out := b.Const(0x6000)
	b.Store(out, 0, sum)
	b.Ret()
	m, _ := run(t, b.MustBuild(), nil)
	if got := m.Word(0x6000); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestStepBudget(t *testing.T) {
	b := ir.NewBuilder("infinite")
	b.Label("spin")
	b.Nop()
	b.Jmp("spin")
	m, err := New(b.MustBuild(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(trace.New("x"))
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("err = %v, want ErrStepBudget", err)
	}
	if m.Steps != 1000 {
		t.Errorf("steps = %d", m.Steps)
	}
}

func TestBlockMarkersEmitted(t *testing.T) {
	p := &ir.Program{Name: "markers", NumRegs: 1, Instrs: []ir.Instr{
		{Op: ir.BlockBegin, Imm: 3},
		{Op: ir.Const, Dst: 0, Imm: 1},
		{Op: ir.BlockEnd, Imm: 3},
		{Op: ir.Ret},
	}}
	m, err := New(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("markers")
	if err := m.Run(tr); err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Kind != trace.BlockBegin || tr.Events[0].Block != 3 {
		t.Errorf("events: %v", tr.Events)
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Kind != trace.BlockEnd {
		t.Errorf("last event: %v", last)
	}
}

func TestGeneratorWrapper(t *testing.T) {
	b := ir.NewBuilder("gen")
	addr := b.Const(0x9000)
	v := b.Reg()
	b.Load(v, addr, 0)
	b.Ret()
	g := Generator{
		Prog: b.MustBuild(),
		Init: func(set func(mem.Addr, int64)) { set(0x9000, 7) },
	}
	if g.Name() != "gen" {
		t.Errorf("name = %q", g.Name())
	}
	tr := trace.Capture(g)
	found := false
	for _, e := range tr.Events {
		if e.Kind == trace.Load && e.Addr == 0x9000 {
			found = true
		}
	}
	if !found {
		t.Error("generator did not emit the load")
	}
}

func TestNewRejectsInvalidProgram(t *testing.T) {
	if _, err := New(&ir.Program{Name: "bad"}, 0); err == nil {
		t.Error("expected validation error")
	}
}

func TestDataDependentControlFlow(t *testing.T) {
	// Branch on a loaded value: the histo pattern.
	b := ir.NewBuilder("datadep")
	addr := b.Const(0x7000)
	v := b.Reg()
	out := b.Const(0x7100)
	one := b.Const(1)
	b.Load(v, addr, 0)
	b.BrZ(v, "skip")
	b.Store(out, 0, one)
	b.Label("skip")
	b.Ret()
	m, _ := run(t, b.MustBuild(), func(m *Machine) { m.SetWord(0x7000, 1) })
	if m.Word(0x7100) != 1 {
		t.Error("taken path not executed")
	}
	m2, _ := run(t, b.MustBuild(), nil) // word defaults to 0
	if m2.Word(0x7100) != 0 {
		t.Error("not-taken path executed")
	}
}

func TestBitwiseOps(t *testing.T) {
	b := ir.NewBuilder("bits")
	a := b.Const(0b1100)
	c := b.Const(0b1010)
	andR := b.Reg()
	xorR := b.Reg()
	shrR := b.Reg()
	movR := b.Reg()
	eqR := b.Reg()
	two := b.Const(2)
	b.And(andR, a, c)
	b.Xor(xorR, a, c)
	b.Shr(shrR, a, two)
	b.Mov(movR, a)
	b.CmpEQ(eqR, a, a)
	b.Nop()
	out := b.Const(0x5000)
	b.Store(out, 0, andR)
	b.Store(out, 8, xorR)
	b.Store(out, 16, shrR)
	b.Store(out, 24, movR)
	b.Store(out, 32, eqR)
	b.Ret()
	m, _ := run(t, b.MustBuild(), nil)
	want := map[mem.Addr]int64{
		0x5000: 0b1000, 0x5008: 0b0110, 0x5010: 0b11, 0x5018: 0b1100, 0x5020: 1,
	}
	for addr, v := range want {
		if got := m.Word(addr); got != v {
			t.Errorf("word[%#x] = %d, want %d", addr, got, v)
		}
	}
}

func TestBranchEventsEmitted(t *testing.T) {
	b := ir.NewBuilder("br")
	i := b.Const(0)
	n := b.Const(4)
	cond := b.Reg()
	b.Label("loop")
	b.AddI(i, i, 1)
	b.CmpLT(cond, i, n)
	b.BrNZ(cond, "loop")
	b.Ret()
	_, tr := run(t, b.MustBuild(), nil)
	var branches, taken int
	for _, e := range tr.Events {
		if e.Kind == trace.Branch {
			branches++
			if e.Taken {
				taken++
			}
		}
	}
	// 4 iterations: 3 taken back edges + 1 not-taken exit.
	if branches != 4 || taken != 3 {
		t.Errorf("branches=%d taken=%d, want 4/3", branches, taken)
	}
}

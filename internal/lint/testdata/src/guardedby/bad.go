// Package guardedby is the fixture for the cbws/guardedby analyzer.
// The box type annotates three fields; every function below accesses
// one of them without (fully) holding the named mutex.
package guardedby

import "sync"

type box struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	n     int            //cbws:guardedby mu
	m     map[string]int //cbws:guardedby mu
	items []int          //cbws:guardedby rw
}

func (b *box) badRead() int {
	return b.n // want `field n read without holding mu`
}

func (b *box) badWrite() {
	b.n = 1 // want `field n written without holding mu`
}

func (b *box) badRLockWrite() {
	b.rw.RLock()
	b.items[0] = 1 // want `field items written while holding only rw.RLock`
	b.rw.RUnlock()
}

func (b *box) badBranch(c bool) {
	if c {
		b.mu.Lock()
	}
	b.n++ // want `field n written without holding mu`
	if c {
		b.mu.Unlock()
	}
}

func (b *box) badAfterUnlock() int {
	b.mu.Lock()
	b.n = 1
	b.mu.Unlock()
	return b.n // want `field n read without holding mu`
}

func (b *box) badClosure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := func() {
		b.n = 2 // want `field n written without holding mu`
	}
	f()
}

func (b *box) badDelete() {
	delete(b.m, "k") // want `field m written without holding mu`
}

func (b *box) badAddr() *map[string]int {
	return &b.m // want `field m written without holding mu`
}

func (b *box) bumpLocked() { b.n++ }

func (b *box) badCall() {
	b.bumpLocked() // want `call to bumpLocked without holding mu`
}

type badAnno struct {
	//cbws:guardedby nosuch
	x int // want `no sibling sync.Mutex or sync.RWMutex field`
}

func useBadAnno(a *badAnno) int { return a.x }

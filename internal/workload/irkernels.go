package workload

import (
	"fmt"

	"cbws/internal/annotate"
	"cbws/internal/interp"
	"cbws/internal/ir"
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// IR kernels: workloads written in the mini-IR and annotated by the
// automatic loop-annotation pass, exercising the full compiler-side
// pipeline (CFG construction → innermost-loop discovery → marker
// insertion → execution). They are not part of the paper's 30-benchmark
// roster — the hand-modelled emulations above are — but provide an
// end-to-end demonstration that block markers need no manual placement.

// irKernel lowers a builder function into an annotated generator.
func irKernel(name string, build func(b *ir.Builder), init func(set func(mem.Addr, int64))) trace.Generator {
	b := ir.NewBuilder(name)
	build(b)
	prog := b.MustBuild()
	res, err := annotate.Annotate(prog, 0)
	if err != nil {
		panic(fmt.Sprintf("workload: annotating %s: %v", name, err))
	}
	return interp.Generator{Prog: res.Prog, MaxStep: 200_000_000, Init: init}
}

// IRVecAdd is c[i] = a[i] + b[i]: three unit-stride streams, the
// simplest CBWS-predictable kernel.
func IRVecAdd(n int64) trace.Generator {
	return irKernel("ir-vecadd", func(b *ir.Builder) {
		const aBase, bBase, cBase = 1 << 30, 1<<30 + 1<<28, 1<<30 + 1<<29
		i := b.Const(0)
		limit := b.Const(n)
		cond := b.Reg()
		off := b.Reg()
		av := b.Reg()
		bv := b.Reg()
		sum := b.Reg()
		b.Label("loop")
		b.CmpLT(cond, i, limit)
		b.BrZ(cond, "done")
		b.MulI(off, i, 8)
		b.Load(av, off, aBase)
		b.Load(bv, off, bBase)
		b.Add(sum, av, bv)
		b.Store(off, cBase, sum)
		b.AddI(i, i, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Ret()
	}, nil)
}

// IRStencil1D is b[i] = a[i-1] + a[i] + a[i+1]: a three-point stencil
// whose working set advances one element per iteration.
func IRStencil1D(n int64) trace.Generator {
	return irKernel("ir-stencil1d", func(b *ir.Builder) {
		const aBase, oBase = 1 << 31, 1<<31 + 1<<28
		i := b.Const(1)
		limit := b.Const(n - 1)
		cond := b.Reg()
		off := b.Reg()
		west := b.Reg()
		ctr := b.Reg()
		east := b.Reg()
		sum := b.Reg()
		b.Label("loop")
		b.CmpLT(cond, i, limit)
		b.BrZ(cond, "done")
		b.MulI(off, i, 8)
		b.Load(west, off, aBase-8)
		b.Load(ctr, off, aBase)
		b.Load(east, off, aBase+8)
		b.Add(sum, west, ctr)
		b.Add(sum, sum, east)
		b.Store(off, oBase, sum)
		b.AddI(i, i, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Ret()
	}, nil)
}

// IRHisto increments hist[img[i]] over a pre-initialized image: the
// data-dependent pattern of Figure 16, executed through real loads so
// the bin address truly depends on the loaded value.
func IRHisto(pixels int64, bins int) trace.Generator {
	const imgBase, histBase = 1 << 32, 1<<32 + 1<<28
	return irKernel("ir-histo", func(b *ir.Builder) {
		i := b.Const(0)
		limit := b.Const(pixels)
		cond := b.Reg()
		off := b.Reg()
		v := b.Reg()
		hoff := b.Reg()
		cnt := b.Reg()
		b.Label("loop")
		b.CmpLT(cond, i, limit)
		b.BrZ(cond, "done")
		b.MulI(off, i, 8)
		b.Load(v, off, imgBase) // pixel value
		b.MulI(hoff, v, 8)
		b.Load(cnt, hoff, histBase) // hist[value]
		b.AddI(cnt, cnt, 1)
		b.Store(hoff, histBase, cnt)
		b.AddI(i, i, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Ret()
	}, func(set func(mem.Addr, int64)) {
		// Deterministic pseudo-random pixel values.
		rng := newPRNG(0x1712a9e)
		for p := int64(0); p < pixels; p++ {
			set(mem.Addr(imgBase)+mem.Addr(p*8), int64(rng.intn(bins)))
		}
	})
}

// IRPointerChase walks a pre-built linked list of n nodes for steps
// hops: a do-while-shaped loop (the latch is the header) whose next
// address depends on the loaded value — the mcf-style pattern no
// differential can capture.
func IRPointerChase(n int64, steps int64) trace.Generator {
	const nodeBase = 1 << 33
	const nodeBytes = 64
	return irKernel("ir-chase", func(b *ir.Builder) {
		cur := b.Const(nodeBase) // current node address
		i := b.Const(0)
		limit := b.Const(steps)
		cond := b.Reg()
		b.Label("loop")
		b.Load(cur, cur, 0) // cur = cur->next (loaded value is an address)
		b.AddI(i, i, 1)
		b.CmpLT(cond, i, limit)
		b.BrNZ(cond, "loop")
		b.Ret()
	}, func(set func(mem.Addr, int64)) {
		// Build a deterministic pseudo-random cycle over the nodes.
		rng := newPRNG(0xc4a5e)
		perm := make([]int64, n)
		for i := range perm {
			perm[i] = int64(i)
		}
		for i := int64(n) - 1; i > 0; i-- {
			j := int64(rng.intn(int(i + 1)))
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := int64(0); i < n; i++ {
			from := perm[i]
			to := perm[(i+1)%n]
			set(mem.Addr(nodeBase+from*nodeBytes), nodeBase+to*nodeBytes)
		}
	})
}

// IRGather is a soplex-style divergent gather: stream idx[i], gather
// x[idx[i]], and accumulate only when the gathered value passes a
// data-dependent threshold — the annotated block diverges on real data.
func IRGather(n int64, vecLen int64) trace.Generator {
	const idxBase, xBase, yBase = 1 << 34, 1<<34 + 1<<28, 1<<34 + 1<<29
	return irKernel("ir-gather", func(b *ir.Builder) {
		i := b.Const(0)
		limit := b.Const(n)
		cond := b.Reg()
		off := b.Reg()
		idx := b.Reg()
		xoff := b.Reg()
		v := b.Reg()
		thresh := b.Const(8)
		pass := b.Reg()
		b.Label("loop")
		b.CmpLT(cond, i, limit)
		b.BrZ(cond, "done")
		b.MulI(off, i, 8)
		b.Load(idx, off, idxBase) // column index
		b.MulI(xoff, idx, 8)
		b.Load(v, xoff, xBase) // gather
		b.CmpLT(pass, v, thresh)
		b.BrZ(pass, "skip") // data-dependent divergence
		b.Store(xoff, yBase, v)
		b.Label("skip")
		b.AddI(i, i, 1)
		b.Jmp("loop")
		b.Label("done")
		b.Ret()
	}, func(set func(mem.Addr, int64)) {
		rng := newPRNG(0x6a73e4)
		for i := int64(0); i < n; i++ {
			set(mem.Addr(idxBase)+mem.Addr(i*8), int64(rng.intn(int(vecLen))))
		}
		for i := int64(0); i < vecLen; i++ {
			set(mem.Addr(xBase)+mem.Addr(i*8), int64(rng.intn(16)))
		}
	})
}

// IRKernels returns the IR-based demonstration kernels with default
// sizes.
func IRKernels() []Spec {
	return []Spec{
		{Name: "ir-vecadd", Suite: "ir", Make: func() trace.Generator { return IRVecAdd(1 << 18) }},
		{Name: "ir-stencil1d", Suite: "ir", Make: func() trace.Generator { return IRStencil1D(1 << 18) }},
		{Name: "ir-histo", Suite: "ir", Make: func() trace.Generator { return IRHisto(1<<17, 1<<14) }},
		{Name: "ir-chase", Suite: "ir", Make: func() trace.Generator { return IRPointerChase(1<<16, 1<<18) }},
		{Name: "ir-gather", Suite: "ir", Make: func() trace.Generator { return IRGather(1<<17, 1<<15) }},
	}
}

// Package cluster scales the single cbwsd daemon into a fleet: a
// consistent-hash ring routes jobs by content address across N
// workers, and a failover-aware client drives the ring from cbwsctl
// and cbwsload.
//
// Routing is client-side — there is no coordinator process. That
// choice leans on the substrate the service already provides: jobs are
// content-addressed and idempotent, every worker can compute (or
// peer-fetch) any key, and results are bit-identical across workers.
// Routing therefore only decides *locality* (which worker's cache gets
// warm for a key), never correctness, so the ring can live in each
// client with no coordination, no extra network hop, and no single
// point of failure. A misrouted or failed-over request costs at most
// one redundant simulation, which the federated cache then absorbs.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per worker. 128 vnodes
// keep the load spread within a few percent of uniform for small
// fleets while the ring stays tiny (3 workers → 384 points).
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over worker names
// (base URLs). Keys map to the worker owning the first ring point at
// or after the key's hash; when a worker joins or leaves, only the
// keys hashing into its vnode arcs move, everything else keeps its
// owner — the property the ring test pins.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given workers with replicas vnodes
// each (<=0: DefaultReplicas). Worker order does not matter: the node
// list is sorted first so every client sharing a member list — in any
// order — derives the identical ring. Duplicates are rejected, since
// they would silently double a worker's share.
func NewRing(workers []string, replicas int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one worker")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	nodes := append([]string(nil), workers...)
	sort.Strings(nodes)
	for i := 1; i < len(nodes); i++ {
		if nodes[i] == nodes[i-1] {
			return nil, fmt.Errorf("cluster: duplicate worker %q", nodes[i])
		}
	}
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*replicas)}
	for ni, node := range nodes {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(node, v), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on node index so equal hashes (vanishingly rare but
		// possible) still order deterministically across clients.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// vnodeHash is the ring position of one virtual node: FNV-64a over
// "worker\x00vnode#", finalized through mix64. FNV is stable across
// platforms and Go versions, which matters — every client must derive
// the same ring — but on its own it leaves similar short inputs
// correlated (a worker's vnodes clump into one arc and the load skews
// 2–10x); the finalizer restores avalanche so the spread is uniform.
func vnodeHash(node string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(vnode)))
	return mix64(h.Sum64())
}

// keyHash is the ring position of a routing key.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: a fixed bijective
// avalanche over the raw FNV value. Deterministic everywhere, no
// seed.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Nodes returns the ring's workers in canonical (sorted) order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the number of workers.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the worker owning key: the node of the first ring
// point at or after the key's hash, wrapping at the top.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.search(key)].node]
}

// search returns the index of the first point at or after key's hash.
func (r *Ring) search(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Sequence returns all workers in ring order starting at key's owner:
// the owner first, then each distinct successor. This is the failover
// (and peer-fetch) order — every client walks the same sequence, so
// retries concentrate on the same fallback worker and its cache gets
// warm in turn.
func (r *Ring) Sequence(key string) []string {
	out := make([]string, 0, len(r.nodes))
	seen := make([]bool, len(r.nodes))
	for i, n := r.search(key), 0; n < len(r.points) && len(out) < len(r.nodes); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

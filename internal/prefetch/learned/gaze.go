package learned

import (
	"math/bits"

	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// GazeConfig parametrizes the Gaze-style spatial prefetcher. The
// design follows Chen et al. (2024): spatial footprints are recorded
// per region like SMS, but the pattern signature is the *pair* of the
// trigger PC and the offsets of the first two distinct lines touched —
// the intra-region temporal order — which disambiguates patterns that
// share a trigger PC. Replay is confidence-gated and re-issues the
// recorded touch order first, so the earliest-needed lines arrive
// first. Zero-value fields fall back to defaults.
type GazeConfig struct {
	// RegionBytes is the spatial-region granularity (default 4096,
	// one page = 64 lines; must be a power of two ≥ 2 lines, ≤ 4096
	// lines so a footprint fits the fixed bitmap words).
	RegionBytes int
	// ActiveEntries is the number of regions whose generations are
	// recorded concurrently (default 64, LRU by unique tick).
	ActiveEntries int
	// PatternEntries sizes the direct-mapped pattern table (default
	// 512, rounded up to a power of two).
	PatternEntries int
	// OrderLines is how many leading touches of a generation are
	// recorded in temporal order and replayed first (default 8,
	// max 16).
	OrderLines int
	// ConfMax / ConfThreshold bound the per-pattern saturating
	// confidence counter and gate replay (defaults 3 / 2).
	ConfMax       int8
	ConfThreshold int8
}

// DefaultGazeConfig returns the default configuration: 4KB regions, a
// 64-entry active table, 512 direct-mapped patterns, 8 ordered lines
// and a 2-of-3 confidence gate.
func DefaultGazeConfig() GazeConfig {
	return GazeConfig{
		RegionBytes:    4096,
		ActiveEntries:  64,
		PatternEntries: 512,
		OrderLines:     8,
		ConfMax:        3,
		ConfThreshold:  2,
	}
}

func (c GazeConfig) withDefaults() GazeConfig {
	d := DefaultGazeConfig()
	if c.RegionBytes == 0 {
		c.RegionBytes = d.RegionBytes
	}
	if c.ActiveEntries == 0 {
		c.ActiveEntries = d.ActiveEntries
	}
	if c.PatternEntries == 0 {
		c.PatternEntries = d.PatternEntries
	}
	c.PatternEntries = nextPow2(c.PatternEntries)
	if c.OrderLines == 0 {
		c.OrderLines = d.OrderLines
	}
	if c.OrderLines > gazeMaxOrder {
		c.OrderLines = gazeMaxOrder
	}
	if c.ConfMax == 0 {
		c.ConfMax = d.ConfMax
	}
	if c.ConfThreshold == 0 {
		c.ConfThreshold = d.ConfThreshold
	}
	return c
}

// gazeMaxOrder bounds the recorded touch order (fits the fixed array).
const gazeMaxOrder = 16

// gazeMaxRegionLines bounds the region footprint bitmap (64 lines =
// one uint64 word per entry; larger regions use multiple words).
const gazeMaxRegionWords = 64 // up to 4096 lines per region

// GazeStats counts prefetcher-internal events; the reference model
// mirrors it field for field.
type GazeStats struct {
	Generations       uint64 // region generations committed to the pattern table
	SingleLine        uint64 // generations dropped for touching a single line
	PatternsLearned   uint64 // commits that created or overwrote a pattern entry
	PatternsConfirmed uint64 // commits matching the stored footprint (conf++)
	PatternsDiverged  uint64 // commits differing from the stored footprint (conf--)
	Replays           uint64 // trigger pairs that replayed a confident pattern
	LinesPrefetched   uint64 // lines issued by replay
}

// gazeActive is one in-flight region generation: the footprint
// accumulated so far plus the temporal order of its leading touches.
type gazeActive struct {
	valid     bool
	replaying bool // replay already fired for this generation
	region    uint64
	pc        uint64
	off1      int16 // first distinct line offset
	off2      int16 // second distinct line offset, -1 until seen
	footprint [gazeMaxRegionWords]uint64
	order     [gazeMaxOrder]uint8
	orderLen  int
	lru       uint64
}

// gazePattern is one learned pattern: the trigger signature tag, the
// final footprint of the last generation(s), the touch order and a
// saturating confidence counter.
type gazePattern struct {
	valid     bool
	tag       uint32
	footprint [gazeMaxRegionWords]uint64
	order     [gazeMaxOrder]uint8
	orderLen  int
	conf      int8
}

// Gaze is the spatial-pattern prefetcher. All state is preallocated
// in Reset; OnAccess never allocates.
type Gaze struct {
	prefetch.NoBlocks
	cfg         GazeConfig
	regionLines int  // lines per region
	regionShift uint // line-address shift to region number
	regionWords int  // footprint bitmap words in use
	patMask     uint32

	active   []gazeActive
	patterns []gazePattern

	tick uint64

	Stats GazeStats
}

var (
	_ prefetch.Prefetcher       = (*Gaze)(nil)
	_ prefetch.EvictionObserver = (*Gaze)(nil)
)

// NewGaze builds a Gaze-style prefetcher; zero-value fields of cfg
// fall back to defaults.
func NewGaze(cfg GazeConfig) *Gaze {
	cfg = cfg.withDefaults()
	g := &Gaze{cfg: cfg}
	g.Reset()
	return g
}

// Name implements prefetch.Prefetcher.
func (g *Gaze) Name() string { return "gaze" }

// Config returns the active configuration.
func (g *Gaze) Config() GazeConfig { return g.cfg }

// Reset implements prefetch.Prefetcher, preallocating every structure
// the hot path touches.
func (g *Gaze) Reset() {
	c := g.cfg
	g.regionLines = c.RegionBytes >> mem.LineShift
	if g.regionLines < 2 {
		g.regionLines = 2
	}
	if g.regionLines > gazeMaxRegionWords*64 {
		g.regionLines = gazeMaxRegionWords * 64
	}
	g.regionShift = mem.Log2(uint64(g.regionLines))
	g.regionLines = 1 << g.regionShift
	g.regionWords = (g.regionLines + 63) / 64
	g.patMask = uint32(c.PatternEntries - 1)
	g.active = make([]gazeActive, c.ActiveEntries)
	g.patterns = make([]gazePattern, c.PatternEntries)
	g.tick = 0
	g.Stats = GazeStats{}
}

// signature hashes the trigger pair — PC plus the first two distinct
// line offsets of the generation — into the pattern table. The formula
// is part of the reference contract: check.RefGaze re-implements it
// verbatim.
//
//cbws:hotpath
func gazeSignature(pc uint64, off1, off2 int16) uint32 {
	s := (uint32(pc) ^ uint32(pc>>32)) * 0x9E3779B1
	s ^= uint32(uint16(off1)) * 0x85EBCA6B
	s = s<<9 | s>>23
	s ^= uint32(uint16(off2)) * 0xC2B2AE35
	return s
}

// findActive scans the active table for the region (linear scan over a
// fixed 64-entry array, as the hardware CAM would).
//
//cbws:hotpath
func (g *Gaze) findActive(region uint64) int {
	for i := range g.active {
		if g.active[i].valid && g.active[i].region == region {
			return i
		}
	}
	return -1
}

// allocActive claims a slot for a new generation, committing and
// evicting the least-recently-used entry when the table is full.
// Ticks are unique, so the LRU victim is unambiguous.
//
//cbws:hotpath
func (g *Gaze) allocActive() int {
	victim := -1
	for i := range g.active {
		if !g.active[i].valid {
			return i
		}
		if victim < 0 || g.active[i].lru < g.active[victim].lru {
			victim = i
		}
	}
	g.commit(victim)
	return victim
}

// commit retires an active generation into the pattern table: single-
// line generations are dropped; otherwise the trigger-pair signature
// selects a direct-mapped entry whose confidence is trained up on a
// footprint match and down (to eventual replacement) on divergence.
//
//cbws:hotpath
func (g *Gaze) commit(idx int) {
	e := &g.active[idx]
	e.valid = false
	if e.off2 < 0 {
		g.Stats.SingleLine++
		return
	}
	g.Stats.Generations++
	s := gazeSignature(e.pc, e.off1, e.off2)
	p := &g.patterns[(s^s>>16)&g.patMask]
	if !p.valid || p.tag != s {
		p.valid = true
		p.tag = s
		p.footprint = e.footprint
		p.order = e.order
		p.orderLen = e.orderLen
		p.conf = 1
		g.Stats.PatternsLearned++
		return
	}
	if p.footprint == e.footprint {
		if p.conf < g.cfg.ConfMax {
			p.conf++
		}
		p.order = e.order
		p.orderLen = e.orderLen
		g.Stats.PatternsConfirmed++
		return
	}
	g.Stats.PatternsDiverged++
	p.conf--
	if p.conf <= 0 {
		p.tag = s
		p.footprint = e.footprint
		p.order = e.order
		p.orderLen = e.orderLen
		p.conf = 1
		g.Stats.PatternsLearned++
	}
}

// replay issues a confident pattern for a fresh generation: the
// recorded touch order first (earliest-needed lines, skipping the two
// trigger offsets already demanded), then the rest of the footprint in
// ascending offset order.
//
//cbws:hotpath
func (g *Gaze) replay(e *gazeActive, p *gazePattern, base mem.LineAddr, issue prefetch.IssueFunc) {
	g.Stats.Replays++
	for i := 0; i < p.orderLen; i++ {
		off := int16(p.order[i])
		if off == e.off1 || off == e.off2 {
			continue
		}
		issue(base.Add(int64(off)))
		g.Stats.LinesPrefetched++
	}
	for w := 0; w < g.regionWords; w++ {
		fp := p.footprint[w]
		for fp != 0 {
			b := bits.TrailingZeros64(fp)
			fp &= fp - 1
			off := int16(w*64 + b)
			if off == e.off1 || off == e.off2 || inOrder(p, off) {
				continue
			}
			issue(base.Add(int64(off)))
			g.Stats.LinesPrefetched++
		}
	}
}

// inOrder reports whether off is among the pattern's ordered touches
// (already issued by the first replay loop).
//
//cbws:hotpath
func inOrder(p *gazePattern, off int16) bool {
	for i := 0; i < p.orderLen; i++ {
		if int16(p.order[i]) == off {
			return true
		}
	}
	return false
}

// OnAccess implements prefetch.Prefetcher. Like SMS, generations are
// trained on every demand access but triggered (allocated/replayed)
// only by misses and prefetched-line first uses.
//
//cbws:hotpath
func (g *Gaze) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	g.tick++
	line := a.Line
	region := uint64(line) >> g.regionShift
	off := int16(uint64(line) & uint64(g.regionLines-1))

	idx := g.findActive(region)
	if idx < 0 {
		// Cold region: only a miss (or prefetch first-use) opens a
		// new generation, anchored at this trigger.
		if !a.Miss() && !a.PfHit {
			return
		}
		idx = g.allocActive()
		e := &g.active[idx]
		e.valid = true
		e.replaying = false
		e.region = region
		e.pc = a.PC
		e.off1 = off
		e.off2 = -1
		for w := 0; w < g.regionWords; w++ {
			e.footprint[w] = 0
		}
		e.footprint[off>>6] |= 1 << (uint(off) & 63)
		e.order[0] = uint8(off)
		e.orderLen = 1
		e.lru = g.tick
		if check.Enabled {
			g.checkTables()
		}
		return
	}

	e := &g.active[idx]
	e.lru = g.tick
	word, bit := off>>6, uint(off)&63
	if e.footprint[word]&(1<<bit) == 0 {
		e.footprint[word] |= 1 << bit
		if e.orderLen < g.cfg.OrderLines {
			e.order[e.orderLen] = uint8(off)
			e.orderLen++
		}
		if e.off2 < 0 {
			// Second distinct line: the trigger pair is complete —
			// look up the pattern table and replay if confident.
			e.off2 = off
			s := gazeSignature(e.pc, e.off1, e.off2)
			p := &g.patterns[(s^s>>16)&g.patMask]
			if p.valid && p.tag == s && p.conf >= g.cfg.ConfThreshold && !e.replaying {
				e.replaying = true
				base := mem.LineAddr(region << g.regionShift)
				g.replay(e, p, base, issue)
			}
		}
	}
	if check.Enabled {
		g.checkTables()
	}
}

// OnCacheEvict implements prefetch.EvictionObserver: evicting a line
// of an active region ends that region's generation, as in SMS/Gaze —
// the footprint is complete once the region's lines start leaving the
// cache.
//
//cbws:hotpath
func (g *Gaze) OnCacheEvict(line mem.LineAddr) {
	region := uint64(line) >> g.regionShift
	if idx := g.findActive(region); idx >= 0 {
		g.commit(idx)
	}
}

// checkTables verifies structural invariants under check.Enabled:
// active regions are unique, order lists are within bounds and consist
// of footprint members, confidences stay within [≤0 handled, ConfMax].
func (g *Gaze) checkTables() {
	for i := range g.active {
		e := &g.active[i]
		if !e.valid {
			continue
		}
		for j := i + 1; j < len(g.active); j++ {
			if g.active[j].valid {
				check.Assertf(g.active[j].region != e.region,
					"gaze: region %#x active in slots %d and %d", e.region, i, j)
			}
		}
		check.Assertf(e.orderLen <= g.cfg.OrderLines, "gaze: orderLen %d > %d", e.orderLen, g.cfg.OrderLines)
		for k := 0; k < e.orderLen; k++ {
			off := e.order[k]
			check.Assertf(e.footprint[off>>6]&(1<<(uint(off)&63)) != 0,
				"gaze: ordered offset %d absent from footprint", off)
		}
	}
	for i := range g.patterns {
		p := &g.patterns[i]
		if p.valid {
			check.Assertf(p.conf <= g.cfg.ConfMax, "gaze: confidence %d > max %d", p.conf, g.cfg.ConfMax)
			check.Assertf(p.orderLen <= gazeMaxOrder, "gaze: pattern orderLen %d", p.orderLen)
		}
	}
}

// StorageBits estimates the hardware budget: per active entry a region
// tag (36b), PC (32b folded), two offsets, the footprint bitmap, the
// order list and an LRU stamp; per pattern entry a 32-bit tag, the
// bitmap, the order list and a 2-bit confidence.
func (g *Gaze) StorageBits() uint64 {
	offBits := uint64(mem.Log2(uint64(g.regionLines)))
	fp := uint64(g.regionLines)
	order := uint64(g.cfg.OrderLines) * offBits
	active := uint64(g.cfg.ActiveEntries) * (36 + 32 + 2*offBits + fp + order + 16)
	pat := uint64(len(g.patterns)) * (32 + fp + order + 2)
	return active + pat
}

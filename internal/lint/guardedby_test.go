package lint_test

import (
	"testing"

	"cbws/internal/lint"
	"cbws/internal/lint/linttest"
)

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, lint.GuardedBy, "testdata/src/guardedby")
}

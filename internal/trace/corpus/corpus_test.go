package corpus

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cbws/internal/mem"
	"cbws/internal/trace"
)

// randomEvents builds a deterministic mixed-kind event stream.
func randomEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	pc := uint64(0x400000)
	addr := uint64(1 << 28)
	for len(events) < n {
		switch rng.Intn(10) {
		case 0:
			events = append(events, trace.Event{Kind: trace.Instr, N: rng.Intn(64) + 1})
		case 1:
			events = append(events, trace.Event{Kind: trace.BlockBegin, Block: rng.Intn(1 << 12)})
		case 2:
			events = append(events, trace.Event{Kind: trace.BlockEnd, Block: rng.Intn(1 << 12)})
		case 3:
			pc += uint64(rng.Intn(32)) * 4
			events = append(events, trace.Event{Kind: trace.Branch, PC: pc, Taken: rng.Intn(2) == 1})
		default:
			pc += uint64(rng.Intn(8)) * 4
			addr = uint64(int64(addr) + int64(rng.Intn(1<<14)) - 1<<13)
			kind := trace.Load
			if rng.Intn(4) == 0 {
				kind = trace.Store
			}
			events = append(events, trace.Event{Kind: kind, PC: pc, Addr: mem.Addr(addr)})
		}
	}
	return events
}

// packEvents encodes events into an in-memory corpus.
func packEvents(t *testing.T, name string, events []trace.Event, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !w.ConsumeBatch(events) {
		t.Fatalf("writer refused events: %v", w.Close())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// collect replays a corpus into a materialized slice.
func collect(t *testing.T, c *Corpus) []trace.Event {
	t.Helper()
	out := trace.New(c.Name())
	if err := c.NewReplayer().Replay(out); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out.Events
}

// normalize applies the codec's Instr normalization (N=0 encodes as 1).
func normalize(events []trace.Event) []trace.Event {
	out := make([]trace.Event, len(events))
	for i, e := range events {
		if e.Kind == trace.Instr && e.N == 0 {
			e.N = 1
		}
		out[i] = e
	}
	return out
}

func TestRoundTripAllPaths(t *testing.T) {
	events := randomEvents(3*DefaultBlockEvents+17, 1)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"small-blocks", Options{BlockEvents: 64}},
		{"compressed", Options{Compress: true}},
		{"compressed-small", Options{Compress: true, BlockEvents: 128}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := packEvents(t, "rt", events, tc.opts)
			want := normalize(events)

			// In-memory (the mmap code path's parser/decoder).
			c, err := OpenBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != "rt" {
				t.Errorf("Name = %q", c.Name())
			}
			if c.Events() != uint64(len(events)) {
				t.Errorf("Events = %d, want %d", c.Events(), len(events))
			}
			if got := collect(t, c); !eventsEqual(got, want) {
				t.Fatal("in-memory replay diverged from the packed events")
			}

			// ReaderAt fallback.
			cf, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if got := collect(t, cf); !eventsEqual(got, want) {
				t.Fatal("ReaderAt replay diverged from the packed events")
			}
		})
	}
}

func eventsEqual(a, b []trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOpenFileMmapAndFallback(t *testing.T) {
	events := randomEvents(5000, 2)
	data := packEvents(t, "file", events, Options{BlockEvents: 512})
	path := filepath.Join(t.TempDir(), "file.cbwc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	want := normalize(events)
	for _, disable := range []bool{false, true} {
		c, err := Open(path, OpenOptions{DisableMmap: disable})
		if err != nil {
			t.Fatalf("Open(DisableMmap=%v): %v", disable, err)
		}
		if disable && c.Mmapped() {
			t.Error("DisableMmap did not take")
		}
		if got := collect(t, c); !eventsEqual(got, want) {
			t.Errorf("Open(DisableMmap=%v) replay diverged", disable)
		}
		h, err := c.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != 64 {
			t.Errorf("Hash = %q, want 64 hex chars", h)
		}
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}
}

// TestPackDeterministicHash packs the same stream twice (and from a
// real workload generator) and requires byte-identical files — the
// property the content address rests on.
func TestPackDeterministicHash(t *testing.T) {
	events := randomEvents(10000, 3)
	a := packEvents(t, "det", events, Options{})
	b := packEvents(t, "det", events, Options{})
	if !bytes.Equal(a, b) {
		t.Fatal("packing the same events twice produced different bytes")
	}
	ca := packEvents(t, "det", events, Options{Compress: true})
	cb := packEvents(t, "det", events, Options{Compress: true})
	if !bytes.Equal(ca, cb) {
		t.Fatal("compressed packing is nondeterministic")
	}
}

func TestPackFile(t *testing.T) {
	gen := trace.New("packed")
	gen.Events = randomEvents(3000, 4)
	path := filepath.Join(t.TempDir(), "packed.cbwc")
	res, err := Pack(path, gen, 0, Options{BlockEvents: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 3000 {
		t.Errorf("PackResult.Events = %d, want 3000", res.Events)
	}
	c, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != res.Hash {
		t.Errorf("reopened hash %s != pack hash %s", h, res.Hash)
	}
	if c.Instructions() != res.Instructions {
		t.Errorf("Instructions = %d, want %d", c.Instructions(), res.Instructions)
	}
	st, _ := os.Stat(path)
	if st.Size() != res.Bytes {
		t.Errorf("file size %d != PackResult.Bytes %d", st.Size(), res.Bytes)
	}
}

// TestPackLimit bounds the packed stream by dynamic instructions, the
// same truncation rule trace.Limit applies at simulation time.
func TestPackLimit(t *testing.T) {
	gen := trace.New("limited")
	for i := 0; i < 1000; i++ {
		gen.Events = append(gen.Events, trace.Event{Kind: trace.Instr, N: 10})
	}
	path := filepath.Join(t.TempDir(), "limited.cbwc")
	res, err := Pack(path, gen, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 100 {
		t.Errorf("packed %d instructions, want 100", res.Instructions)
	}
}

// TestReplayerReusableAndConcurrent checks a Replayer restarts from the
// first event on every call, and that independent replayers can share
// one Corpus.
func TestReplayerReusable(t *testing.T) {
	events := randomEvents(2000, 5)
	c, err := OpenBytes(packEvents(t, "reuse", events, Options{BlockEvents: 128}))
	if err != nil {
		t.Fatal(err)
	}
	r := c.NewReplayer()
	want := normalize(events)
	for i := 0; i < 3; i++ {
		out := trace.New("x")
		if err := r.Replay(out); err != nil {
			t.Fatal(err)
		}
		if !eventsEqual(out.Events, want) {
			t.Fatalf("replay %d diverged", i)
		}
	}
}

// earlyStopSink stops after max events.
type earlyStopSink struct {
	events int
	max    int
}

func (s *earlyStopSink) ConsumeBatch(batch []trace.Event) bool {
	s.events += len(batch)
	return s.events < s.max
}

func TestReplayHonorsStop(t *testing.T) {
	events := randomEvents(4000, 6)
	c, err := OpenBytes(packEvents(t, "stop", events, Options{BlockEvents: 100}))
	if err != nil {
		t.Fatal(err)
	}
	s := &earlyStopSink{max: 250}
	if err := c.NewReplayer().Replay(s); err != nil {
		t.Fatal(err)
	}
	// Delivery is per block (100 events), so the stop lands at the
	// first block boundary at or past max.
	if s.events != 300 {
		t.Errorf("delivered %d events after stop at 250, want 300 (block granularity)", s.events)
	}
}

// TestReplayThroughLimit drives a corpus through trace.Limit, the path
// the simulator uses, and checks the instruction budget truncates the
// replay exactly as it truncates live generation.
func TestReplayThroughLimit(t *testing.T) {
	spec := trace.New("lim")
	spec.Events = randomEvents(5000, 7)
	c, err := OpenBytes(packEvents(t, "lim", spec.Events, Options{BlockEvents: 64}))
	if err != nil {
		t.Fatal(err)
	}

	const budget = 3000
	direct := trace.Capture(trace.Limit{Gen: spec, Max: budget})
	replayed := trace.Capture(trace.Limit{Gen: c.NewReplayer(), Max: budget})
	if !eventsEqual(normalize(direct.Events), replayed.Events) {
		t.Fatalf("Limit over corpus replay diverged from Limit over direct generation (%d vs %d events)",
			len(direct.Events), len(replayed.Events))
	}
}

func TestWriterRejectsOutOfRangeFields(t *testing.T) {
	for name, e := range map[string]trace.Event{
		"instr-count":    {Kind: trace.Instr, N: trace.MaxInstrCount + 1},
		"block-negative": {Kind: trace.BlockBegin, Block: -1},
		"block-huge":     {Kind: trace.BlockEnd, Block: trace.MaxBlockID + 1},
		"unknown-kind":   {Kind: trace.Kind(99)},
	} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		w.Consume(e)
		if err := w.Close(); err == nil {
			t.Errorf("%s: expected Close to report the encoding error", name)
		}
	}
}

func TestEmptyCorpus(t *testing.T) {
	data := packEvents(t, "empty", nil, Options{})
	c, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if c.Events() != 0 || c.Blocks() != 0 {
		t.Errorf("empty corpus has %d events in %d blocks", c.Events(), c.Blocks())
	}
	if got := collect(t, c); len(got) != 0 {
		t.Errorf("empty corpus replayed %d events", len(got))
	}
}

// TestOpenRejectsCorrupt flips classes of structural damage and
// requires ErrBadCorpus from Open (or from Replay for in-block damage).
func TestOpenRejectsCorrupt(t *testing.T) {
	events := randomEvents(1000, 8)
	data := packEvents(t, "corrupt", events, Options{BlockEvents: 128})

	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(data)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"truncated":   data[:len(data)-4],
		"empty":       {},
		"bad-magic":   mutate(func(b []byte) { b[0] = 'X' }),
		"bad-version": mutate(func(b []byte) { b[4] = 9 }),
		"bad-flags":   mutate(func(b []byte) { b[5] = 0x80 }),
		"reserved":    mutate(func(b []byte) { b[6] = 1 }),
		"bad-granule": mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }),
		"bad-end":     mutate(func(b []byte) { b[len(b)-1] ^= 0xFF }),
		"bad-index-off": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[len(b)-trailerLen:], 1)
		}),
		"bad-event-count": mutate(func(b []byte) {
			binary.LittleEndian.PutUint64(b[len(b)-trailerLen+24:], 7)
		}),
	}
	for name, b := range cases {
		if _, err := OpenBytes(b); !errors.Is(err, ErrBadCorpus) {
			t.Errorf("%s: OpenBytes err = %v, want ErrBadCorpus", name, err)
		}
	}

	// In-block corruption: parses fine, fails on replay. Find a byte in
	// the first block's kind column (right after the header) and bend it
	// to an unknown kind.
	c, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	first := c.index[0]
	broken := bytes.Clone(data)
	broken[first.offset] = 0x7F
	cb, err := OpenBytes(broken)
	if err != nil {
		t.Fatalf("in-block damage should parse: %v", err)
	}
	if err := cb.NewReplayer().Replay(trace.New("x")); !errors.Is(err, ErrBadCorpus) {
		t.Errorf("Replay of corrupt block: err = %v, want ErrBadCorpus", err)
	}
}

// TestDecodeRejectsOverCapFields builds a corpus whose columns carry
// over-cap values (bypassing the writer's validation) and requires the
// decoder to reject them — the same 32-bit hardening the stream codec
// has.
func TestDecodeRejectsOverCapFields(t *testing.T) {
	build := func(kind trace.Kind, col int, v uint64) []byte {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, "x", Options{BlockEvents: 16})
		if err != nil {
			t.Fatal(err)
		}
		// Hand-roll a single-event block with an oversized column value.
		w.cols[colKinds] = append(w.cols[colKinds], byte(kind))
		w.cols[col] = binary.AppendUvarint(w.cols[col], v)
		w.events = 1
		w.eventCount = 1
		w.flushBlock()
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"instr-count": build(trace.Instr, colN, uint64(trace.MaxInstrCount)+1),
		"block-id":    build(trace.BlockBegin, colBlock, uint64(trace.MaxBlockID)+1),
	}
	for name, data := range cases {
		c, err := OpenBytes(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := c.NewReplayer().Replay(trace.New("x")); !errors.Is(err, ErrBadCorpus) {
			t.Errorf("%s: Replay err = %v, want ErrBadCorpus", name, err)
		}
	}
}

// TestColumnar pins the format's columnar promise on a strided stream:
// the address column delta-encodes to ~1 byte per access.
func TestColumnarCompactness(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 10000; i++ {
		events = append(events, trace.Event{Kind: trace.Load, PC: 0x400100, Addr: mem.Addr(1<<30 + i*64)})
	}
	data := packEvents(t, "stride", events, Options{})
	c, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	cols := c.ColumnBytes()
	if perEvent := float64(cols[colAddr]) / 10000; perEvent > 2.5 {
		t.Errorf("strided addr column is %.2f bytes/event, want <= 2.5", perEvent)
	}
	if perEvent := float64(len(data)) / 10000; perEvent > 4.5 {
		t.Errorf("strided corpus is %.2f bytes/event, want <= 4.5", perEvent)
	}
}

func TestCompressedSmaller(t *testing.T) {
	events := randomEvents(20000, 9)
	plain := packEvents(t, "c", events, Options{})
	comp := packEvents(t, "c", events, Options{Compress: true})
	if len(comp) >= len(plain) {
		t.Errorf("compressed corpus (%d bytes) not smaller than plain (%d bytes)", len(comp), len(plain))
	}
}

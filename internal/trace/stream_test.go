package trace

import (
	"bytes"
	"errors"
	"testing"
)

// encodeTestTrace returns the CBWT encoding of events under the given
// trace name.
func encodeTestTrace(t testing.TB, name string, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		w.Consume(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// streamTestEvents is a small stream exercising every event kind, with
// PC/Addr values that force multi-byte delta varints.
func streamTestEvents() []Event {
	return []Event{
		{Kind: BlockBegin, Block: 7},
		{Kind: Load, PC: 0x400000, Addr: 0x7fff_0000_1234},
		{Kind: Store, PC: 0x400008, Addr: 0x10},
		{Kind: Branch, PC: 0x400010, Taken: true},
		{Kind: Instr, N: 12345},
		{Kind: Load, PC: 0x400000, Addr: 0x7fff_0000_1240},
		{Kind: Branch, PC: 0x400018, Taken: false},
		{Kind: BlockEnd, Block: 7},
		{Kind: Instr, N: 1},
	}
}

// feedInChunks drives a ChunkDecoder over data split into fixed-size
// chunks and returns the decoded events plus the Feed/Finish error.
func feedInChunks(data []byte, chunk int) ([]Event, string, error) {
	var (
		d   ChunkDecoder
		out Trace
	)
	for len(data) > 0 {
		n := chunk
		if n > len(data) {
			n = len(data)
		}
		if err := d.Feed(data[:n], &out); err != nil {
			return out.Events, d.name, err
		}
		data = data[n:]
	}
	return out.Events, d.name, d.Finish()
}

// TestChunkDecoderEverySplit decodes the same trace at every chunk size
// from 1 byte upward and requires the exact event sequence a whole-file
// Reader produces, regardless of where the chunk boundaries land.
func TestChunkDecoderEverySplit(t *testing.T) {
	events := streamTestEvents()
	data := encodeTestTrace(t, "split-test", events)

	var want Trace
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Decode(&want); err != nil {
		t.Fatal(err)
	}

	for chunk := 1; chunk <= len(data); chunk++ {
		got, name, err := feedInChunks(data, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if name != "split-test" {
			t.Fatalf("chunk=%d: name %q", chunk, name)
		}
		if len(got) != len(want.Events) {
			t.Fatalf("chunk=%d: %d events, want %d", chunk, len(got), len(want.Events))
		}
		for i := range got {
			if got[i] != want.Events[i] {
				t.Fatalf("chunk=%d event %d: %+v != %+v", chunk, i, got[i], want.Events[i])
			}
		}
	}
}

// TestChunkDecoderTrailingBytes checks bytes after the terminator are
// ignored, matching Reader semantics.
func TestChunkDecoderTrailingBytes(t *testing.T) {
	data := encodeTestTrace(t, "trail", streamTestEvents())
	data = append(data, []byte("garbage after terminator")...)
	got, _, err := feedInChunks(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(streamTestEvents()) {
		t.Fatalf("got %d events, want %d", len(got), len(streamTestEvents()))
	}
	var d ChunkDecoder
	var out Trace
	if err := d.Feed(data, &out); err != nil {
		t.Fatal(err)
	}
	if !d.Terminated() {
		t.Fatal("Terminated() = false after terminator")
	}
	// A whole chunk arriving after termination is a no-op too.
	if err := d.Feed([]byte{0x01, 0x02, 0x03}, &out); err != nil {
		t.Fatal(err)
	}
}

// TestChunkDecoderTruncated checks Finish rejects a stream cut off
// before the terminator — both mid-event and at an event boundary.
func TestChunkDecoderTruncated(t *testing.T) {
	data := encodeTestTrace(t, "trunc", streamTestEvents())
	for _, cut := range []int{len(data) - 1, len(data) - 2, len(data) / 2} {
		var d ChunkDecoder
		var out Trace
		if err := d.Feed(data[:cut], &out); err != nil {
			t.Fatalf("cut=%d: unexpected feed error %v", cut, err)
		}
		if err := d.Finish(); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("cut=%d: Finish = %v, want ErrBadTrace", cut, err)
		}
	}
}

// TestChunkDecoderMalformed checks corrupted inputs surface ErrBadTrace
// (sticky) rather than panicking or decoding garbage.
func TestChunkDecoderMalformed(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":    []byte("XXXX\x01\x00\xFF"),
		"bad version":  []byte("CBWT\x07\x00\xFF"),
		"unknown kind": append([]byte("CBWT\x01\x00"), 0x60, 0xFF),
		"branch taken 2": append(encodeHeader("b"),
			byte(Branch), 0x02, 0x02, // dpc=1, taken=2
			0xFF),
		"oversized varint": append(encodeHeader("v"),
			byte(Instr), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01,
			0xFF),
	}
	for name, data := range cases {
		for chunk := 1; chunk <= len(data); chunk++ {
			_, _, err := feedInChunks(data, chunk)
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("%s chunk=%d: err = %v, want ErrBadTrace", name, chunk, err)
			}
		}
		// Sticky: feeding more after the error re-reports it.
		var d ChunkDecoder
		var out Trace
		_ = d.Feed(data, &out)
		if err := d.Feed([]byte{0xFF}, &out); !errors.Is(err, ErrBadTrace) {
			t.Fatalf("%s: error not sticky: %v", name, err)
		}
	}
}

// encodeHeader returns just the CBWT header for a named trace.
func encodeHeader(name string) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		panic(err)
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	b := buf.Bytes()
	return b[:len(b)-1] // drop the terminator Close appended
}

// TestChunkDecoderPartialEventsDelivered checks events decoded before a
// malformed record are still delivered, like Reader's fail() flush.
func TestChunkDecoderPartialEventsDelivered(t *testing.T) {
	data := append(encodeHeader("p"),
		byte(Instr), 0x05,
		byte(BlockBegin), 0x03,
		0x60, // unknown kind
	)
	var d ChunkDecoder
	var out Trace
	err := d.Feed(data, &out)
	if !errors.Is(err, ErrBadTrace) {
		t.Fatalf("err = %v, want ErrBadTrace", err)
	}
	if len(out.Events) != 2 {
		t.Fatalf("delivered %d events before error, want 2", len(out.Events))
	}
}

// TestChunkDecoderSinkStop checks a sink stop discards the remainder
// without error, mirroring Reader's cooperative stop.
func TestChunkDecoderSinkStop(t *testing.T) {
	var events []Event
	for i := 0; i < 4*batchSize; i++ {
		events = append(events, Event{Kind: Instr, N: 1})
	}
	data := encodeTestTrace(t, "stop", events)

	seen := 0
	stopper := batchSinkFunc(func(batch []Event) bool {
		seen += len(batch)
		return false // stop after the first batch
	})
	var d ChunkDecoder
	if err := d.Feed(data, stopper); err != nil {
		t.Fatal(err)
	}
	if seen != batchSize {
		t.Fatalf("saw %d events after stop, want %d", seen, batchSize)
	}
	if !d.Terminated() {
		t.Fatal("sink stop should terminate the decoder")
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish after sink stop: %v", err)
	}
}

type batchSinkFunc func([]Event) bool

func (f batchSinkFunc) ConsumeBatch(batch []Event) bool { return f(batch) }

// TestChunkDecoderAtEventBoundary pins the boundary detector used by
// stream finalization.
func TestChunkDecoderAtEventBoundary(t *testing.T) {
	data := encodeTestTrace(t, "bound", streamTestEvents())
	var d ChunkDecoder
	var out Trace

	full := data[:len(data)-1] // header + whole events, no terminator
	if err := d.Feed(full, &out); err != nil {
		t.Fatal(err)
	}
	if !d.AtEventBoundary() {
		t.Fatal("complete events without terminator should be at a boundary")
	}

	var d2 ChunkDecoder
	if err := d2.Feed(data[:len(data)-2], &out); err != nil {
		t.Fatal(err)
	}
	if d2.AtEventBoundary() {
		t.Fatal("mid-event cut should not be at a boundary")
	}
}

// TestChunkDecoderFeedAllocs pins the steady-state Feed path at zero
// allocations: once the header is parsed, chunk ingest must not allocate
// no matter how chunks split events.
func TestChunkDecoderFeedAllocs(t *testing.T) {
	events := []Event{
		{Kind: BlockBegin, Block: 3},
		{Kind: Load, PC: 0x400000, Addr: 0x1000},
		{Kind: Instr, N: 64},
		{Kind: Store, PC: 0x400008, Addr: 0x2040},
		{Kind: Branch, PC: 0x400010, Taken: true},
		{Kind: BlockEnd, Block: 3},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "allocs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		for _, e := range events {
			w.Consume(e)
		}
	}
	// No terminator: the decoder must stay in the event phase so the
	// same bytes can be fed repeatedly.
	if err := w.w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var d ChunkDecoder
	sink := batchSinkFunc(func([]Event) bool { return true })
	// Parse the header (the one allocating step) before measuring.
	head := encodeHeader("allocs")
	if err := d.Feed(data[:len(head)], sink); err != nil {
		t.Fatal(err)
	}
	// Splitting the body anywhere is fine — each run feeds all of it, so
	// every run ends back at an event boundary.
	body := data[len(head):]
	half := len(body) / 2
	allocs := testing.AllocsPerRun(100, func() {
		// Odd split sizes so events straddle the chunk boundary.
		if err := d.Feed(body[:half], sink); err != nil {
			t.Fatal(err)
		}
		if err := d.Feed(body[half:], sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Feed allocates %v per run, want 0", allocs)
	}
}

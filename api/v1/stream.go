package apiv1

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"cbws/internal/sim"
)

// Streaming routes. A stream is a long-lived simulation fed CBWT trace
// bytes chunk by chunk instead of a closed (workload, prefetcher,
// config) job:
//
//	POST   /v1/streams              open (OpenStreamRequest → StreamView)
//	GET    /v1/streams/{id}         status (StreamView)
//	POST   /v1/streams/{id}/chunks  append CBWT bytes (→ ChunkAck)
//	POST   /v1/streams/{id}/close   end of input; finalize (→ StreamView)
//	DELETE /v1/streams/{id}         abort (→ StreamView)
//	GET    /v1/streams/{id}/probe   live probe snapshot (StreamProbeView)
//
// Admission control is part of the contract: over-quota opens and
// chunks are rejected with 429 + Retry-After (retryable), oversized or
// unbuffereable chunks with 413 (a Retry-After header marks the 413
// retryable; its absence means the chunk can never fit).
const PathStreams = "/v1/streams"

// OpenStreamRequest is the POST /v1/streams body. Tenant names the
// quota account the stream is billed to. Workload and Config mirror the
// closed-job SubmitRequest: the simulated system is configured up
// front, while the instruction stream arrives later as chunks. The
// declared workload decides the result's content address — a stream
// that runs the full MaxInstructions budget yields a RunRecord cached
// under the same key as the equivalent closed job.
type OpenStreamRequest struct {
	Tenant     string          `json:"tenant"`
	Workload   string          `json:"workload"`
	Prefetcher string          `json:"prefetcher"`
	Config     json.RawMessage `json:"config,omitempty"`
}

// StreamState is a stream's lifecycle state: open → finalizing → done,
// with failed for decode/simulation errors and canceled for aborts
// (client DELETE, idle timeout mid-event, daemon drain).
type StreamState string

const (
	StreamOpen       StreamState = "open"
	StreamFinalizing StreamState = "finalizing"
	StreamDone       StreamState = "done"
	StreamFailed     StreamState = "failed"
	StreamCanceled   StreamState = "canceled"
)

// Terminal reports whether the state is final.
func (s StreamState) Terminal() bool {
	return s == StreamDone || s == StreamFailed || s == StreamCanceled
}

// StreamView is the wire form of a stream's state.
type StreamView struct {
	ID         string      `json:"id"`
	Tenant     string      `json:"tenant"`
	Workload   string      `json:"workload"`
	Prefetcher string      `json:"prefetcher"`
	State      StreamState `json:"state"`
	// Key is the content address of the finalized RunRecord in the
	// result cache; set once State is done.
	Key      string   `json:"key,omitempty"`
	BytesIn  uint64   `json:"bytes_in"`
	Chunks   uint64   `json:"chunks"`
	Events   uint64   `json:"events"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
}

// ChunkAck is the POST chunk response: enough state for a feeder to
// pace itself without a separate status poll.
type ChunkAck struct {
	State   StreamState `json:"state"`
	BytesIn uint64      `json:"bytes_in"`
	// BufferedEvents/BufferCap expose the stream's bounded event queue;
	// feeders seeing Buffered approach Cap should expect 413s next.
	BufferedEvents int `json:"buffered_events"`
	BufferCap      int `json:"buffer_cap"`
}

// StreamProbeView is the live observability snapshot: the most recent
// probe sample of the in-flight simulation plus the stream state.
type StreamProbeView struct {
	ID       string      `json:"id"`
	State    StreamState `json:"state"`
	Progress Progress    `json:"progress"`
	// Samples is the number of probe samples taken so far; 0 means
	// Latest is not yet meaningful.
	Samples int             `json:"samples"`
	Latest  sim.SamplePoint `json:"latest"`
}

// OpenStream opens a stream, sleeping out 429 admission rejects under
// the client Budget like Submit does for queue-full.
func (c *Client) OpenStream(req OpenStreamRequest) (StreamView, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return StreamView{}, err
	}
	deadline := time.Now().Add(c.Budget)
	for {
		view, retry, err := c.TryOpenStream(body)
		if err == nil {
			return view, nil
		}
		if retry <= 0 || time.Now().Add(retry).After(deadline) {
			return view, err
		}
		if c.Logf != nil {
			c.Logf("stream admission rejected, retrying in %s", retry)
		}
		if c.OnBackpressure != nil {
			c.OnBackpressure(retry)
		}
		time.Sleep(retry)
	}
}

// TryOpenStream posts one open request without retrying. On a 429 the
// returned wait is the jittered Retry-After (> 0); load harnesses use
// the single-attempt form to count quota rejections instead of
// sleeping them out.
func (c *Client) TryOpenStream(body []byte) (view StreamView, retry time.Duration, err error) {
	resp, err := c.HTTP.Post(c.Base+PathStreams, "application/json", bytes.NewReader(body))
	if err != nil {
		return StreamView{}, 0, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return StreamView{}, 0, err
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusCreated:
		if err := json.Unmarshal(raw, &view); err != nil {
			return StreamView{}, 0, fmt.Errorf("decoding open-stream response: %w", err)
		}
		return view, 0, nil
	case http.StatusTooManyRequests:
		return StreamView{}, c.retryAfter(resp), decodeError(resp, raw)
	default:
		return StreamView{}, 0, decodeError(resp, raw)
	}
}

// SendChunk appends CBWT bytes to an open stream, retrying 429 (rate
// limit) and retryable 413 (buffer full) waits under the Budget. The
// measure callback, when set, observes each attempt's ack latency —
// including rejected attempts — so load harnesses can report chunk-ack
// percentiles without wrapping the client.
func (c *Client) SendChunk(id string, chunk []byte, measure func(time.Duration, int)) (ChunkAck, error) {
	url := c.Base + PathStreams + "/" + id + "/chunks"
	deadline := time.Now().Add(c.Budget)
	for {
		start := time.Now()
		resp, err := c.HTTP.Post(url, "application/octet-stream", bytes.NewReader(chunk))
		if err != nil {
			return ChunkAck{}, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if measure != nil {
			measure(time.Since(start), resp.StatusCode)
		}
		if err != nil {
			return ChunkAck{}, err
		}
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			var ack ChunkAck
			if err := json.Unmarshal(raw, &ack); err != nil {
				return ChunkAck{}, fmt.Errorf("decoding chunk ack: %w", err)
			}
			return ack, nil
		case http.StatusTooManyRequests:
			wait := c.retryAfter(resp)
			if time.Now().Add(wait).After(deadline) {
				return ChunkAck{}, fmt.Errorf("rate limit held for %s: %w", c.Budget, decodeError(resp, raw))
			}
			if c.OnBackpressure != nil {
				c.OnBackpressure(wait)
			}
			time.Sleep(wait)
		case http.StatusRequestEntityTooLarge:
			if resp.Header.Get("Retry-After") == "" {
				// No Retry-After: the chunk exceeds a hard bound
				// (tenant burst or buffer capacity) and can never fit.
				return ChunkAck{}, decodeError(resp, raw)
			}
			wait := c.retryAfter(resp)
			if time.Now().Add(wait).After(deadline) {
				return ChunkAck{}, fmt.Errorf("stream buffer stayed full for %s: %w", c.Budget, decodeError(resp, raw))
			}
			if c.OnBackpressure != nil {
				c.OnBackpressure(wait)
			}
			time.Sleep(wait)
		default:
			return ChunkAck{}, decodeError(resp, raw)
		}
	}
}

// StreamStatus reads one stream's state.
func (c *Client) StreamStatus(id string) (StreamView, error) {
	var view StreamView
	err := c.GetJSON(PathStreams+"/"+id, &view)
	return view, err
}

// StreamProbe reads the live probe snapshot of an in-flight stream.
func (c *Client) StreamProbe(id string) (StreamProbeView, error) {
	var view StreamProbeView
	err := c.GetJSON(PathStreams+"/"+id+"/probe", &view)
	return view, err
}

// CloseStream declares end of input and asks the daemon to finalize.
func (c *Client) CloseStream(id string) (StreamView, error) {
	resp, err := c.HTTP.Post(c.Base+PathStreams+"/"+id+"/close", "application/json", nil)
	if err != nil {
		return StreamView{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return StreamView{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return StreamView{}, decodeError(resp, raw)
	}
	var view StreamView
	if err := json.Unmarshal(raw, &view); err != nil {
		return StreamView{}, fmt.Errorf("decoding close response: %w", err)
	}
	return view, nil
}

// AbortStream cancels a stream; buffered and future input is discarded
// and no result is produced.
func (c *Client) AbortStream(id string) (StreamView, error) {
	req, err := http.NewRequest(http.MethodDelete, c.Base+PathStreams+"/"+id, nil)
	if err != nil {
		return StreamView{}, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return StreamView{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return StreamView{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return StreamView{}, decodeError(resp, raw)
	}
	var view StreamView
	if err := json.Unmarshal(raw, &view); err != nil {
		return StreamView{}, fmt.Errorf("decoding abort response: %w", err)
	}
	return view, nil
}

// WaitStream polls a stream until it reaches a terminal state, erroring
// on failed/canceled streams and when the Budget runs out.
func (c *Client) WaitStream(id string) (StreamView, error) {
	deadline := time.Now().Add(c.Budget)
	for {
		view, err := c.StreamStatus(id)
		if err != nil {
			return view, err
		}
		switch view.State {
		case StreamDone:
			return view, nil
		case StreamFailed, StreamCanceled:
			return view, fmt.Errorf("stream %s %s: %s", id, view.State, view.Error)
		}
		if time.Now().After(deadline) {
			return view, fmt.Errorf("stream %s still %s after %s", id, view.State, c.Budget)
		}
		time.Sleep(c.Poll)
	}
}

package guardedby

func (b *box) sneakyAbove() int {
	//lint:ignore cbws/guardedby read-only snapshot for logging, staleness is fine
	return b.n
}

func (b *box) sneakySameLine() int {
	return b.n //lint:ignore cbws/guardedby read-only snapshot for logging, staleness is fine
}

// Package hotpathalloc is the fixture for the cbws/hotpathalloc
// analyzer: every flagged line carries a want comment; clean.go holds
// the sanctioned patterns; suppressed.go demonstrates waivers.
package hotpathalloc

import "fmt"

type ring struct {
	buf   []int
	count int
}

//cbws:hotpath
func (r *ring) bad(v int) {
	tmp := make([]int, 4) // want `calls make`
	_ = tmp
	s := []int{v} // want `slice literal`
	_ = s
	m := map[int]bool{} // want `map literal`
	_ = m
	p := new(ring) // want `calls new`
	_ = p
	msg := fmt.Sprintf("v=%d", v) // want `calls fmt.Sprintf`
	_ = msg
	r.unannotated() // want `not annotated`
}

func (r *ring) unannotated() {}

//cbws:hotpath
func (r *ring) closureBad() {
	f := func() { r.count++ } // want `closure captures`
	f()
}

//cbws:hotpath
func concat(a, b string) string {
	return a + b // want `concatenates strings`
}

type boxer interface{ M() }

type val struct{ x int }

func (val) M() {}

//cbws:hotpath
func box(v val) boxer {
	return boxer(v) // want `converts non-pointer value to interface`
}

//cbws:hotpath
func escape() *val {
	return &val{x: 1} // want `address of a composite literal`
}

//cbws:hotpath
func appendForeign(dst []int, v int) []int {
	return append(dst, v) // want `not owned by the receiver`
}

//cbws:hotpath
func spawn() {
	go func() {}() // want `spawns a goroutine`
}

// Command tracegen captures a workload's annotated instruction trace
// into the binary trace format, for offline inspection or replay.
//
// Usage:
//
//	tracegen -workload histo-large -n 1000000 -o histo.cbwt
//	tracegen -workload histo-large -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"cbws/internal/cli"
	"cbws/internal/debugsrv"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

func main() {
	wl := flag.String("workload", "stencil-default", "workload name")
	n := flag.Uint64("n", 1_000_000, "instructions to capture")
	out := flag.String("o", "", "output file (default <workload>.cbwt)")
	statsOnly := flag.Bool("stats", false, "print a trace summary instead of writing a file")
	debugAddr := flag.String("debug-addr", "", "serve pprof/expvar diagnostics on this address (e.g. :6060)")
	flag.Parse()

	if flag.NArg() > 0 {
		flag.Usage()
		cli.Usagef("tracegen", "unexpected argument %q", flag.Arg(0))
	}
	if *n == 0 {
		flag.Usage()
		cli.Usagef("tracegen", "-n must be positive")
	}

	if *debugAddr != "" {
		addr, err := debugsrv.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "tracegen: diagnostics on http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	spec, ok := workload.ByName(*wl)
	if !ok {
		cli.Errorf("tracegen", "unknown workload %q", *wl)
	}
	if *statsOnly {
		trace.Analyze(spec.Make(), *n).Render(os.Stdout)
		return
	}
	path := *out
	if path == "" {
		path = spec.Name + ".cbwt"
	}
	f, err := os.Create(path)
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	w, err := trace.NewWriter(f, spec.Name)
	if err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	trace.Limit{Gen: spec.Make(), Max: *n}.Generate(w)
	if err := w.Close(); err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	if err := f.Close(); err != nil {
		cli.Errorf("tracegen", "%v", err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("wrote %s (%d bytes)\n", path, st.Size())
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"

	"cbws/internal/lint/analysis"
)

// WireCompatManifestName is the checked-in contract freeze the
// wirecompat analyzer verifies api/v1 against.
const WireCompatManifestName = "compat.json"

// WireCompatSchema versions the manifest format itself (not the wire
// contract — that's CompatVersion).
const WireCompatSchema = "cbws-wire-compat/1"

// WireManifest is the serialized wire contract of one API package:
// route constants, bare string constants (the job-key schema tag),
// string-typed enums, the JSON shape of every wire struct, and the
// canonical job-key field schema. Maps marshal with sorted keys, and
// field slices keep source order, so regeneration is deterministic.
type WireManifest struct {
	Schema        string                       `json:"schema"`
	CompatVersion int                          `json:"compat_version"`
	Note          string                       `json:"note"`
	Routes        map[string]string            `json:"routes,omitempty"`
	Consts        map[string]string            `json:"consts,omitempty"`
	Enums         map[string]map[string]string `json:"enums,omitempty"`
	Structs       map[string][]WireField       `json:"structs,omitempty"`
	JobKey        []WireField                  `json:"jobkey,omitempty"`
}

// WireField records one exported struct field as it appears on the
// wire: Go name, json tag (verbatim, including options), and type.
type WireField struct {
	Name string `json:"name"`
	JSON string `json:"json"`
	Type string `json:"type"`
}

// WireDiffItem is one difference between a manifest and the current
// source. Entity names the top-level declaration the difference
// anchors to (for diagnostics); Breaking distinguishes contract breaks
// from additive drift that merely needs a manifest regeneration.
type WireDiffItem struct {
	Entity   string
	Breaking bool
	Msg      string
}

// WireCompat freezes the api/v1 wire contract against compat.json: a
// removed or retyped field, a changed json tag, a changed route or
// key-schema constant, or any canonical job-key change fails lint
// until the manifest is explicitly regenerated (breaking changes also
// require a CompatVersion bump with a note). Additive changes only
// ask for a regeneration.
var WireCompat = &analysis.Analyzer{
	Name: "wirecompat",
	Doc: "fail on wire-contract drift in api/v1 (struct shapes, json " +
		"tags, routes, job-key schema) relative to the committed compat.json",
	Scope: []string{"cbws/api/v1"},
	Run:   runWireCompat,
}

func runWireCompat(pass *analysis.Pass) error {
	if len(pass.Files) == 0 {
		return nil
	}
	filePos := pass.Files[0].Name.Pos()
	data, err := os.ReadFile(filepath.Join(pass.Dir, WireCompatManifestName))
	if err != nil {
		pass.Reportf(filePos, "missing %s: freeze the wire contract with `make compat-manifest`", WireCompatManifestName)
		return nil
	}
	var old WireManifest
	if err := json.Unmarshal(data, &old); err != nil {
		pass.Reportf(filePos, "unreadable %s: %v", WireCompatManifestName, err)
		return nil
	}
	cur := BuildWireManifest(pass.Files, pass.Pkg, pass.TypesInfo)
	cur.CompatVersion, cur.Note = old.CompatVersion, old.Note
	for _, it := range DiffWireManifests(&old, cur) {
		pos := filePos
		if it.Entity != "" {
			if obj := pass.Pkg.Scope().Lookup(it.Entity); obj != nil {
				pos = obj.Pos()
			}
		}
		if it.Breaking {
			pass.Reportf(pos, "breaking wire change: %s; bump the manifest with `cbwslint -write-compat -compat-bump <note> ./api/v1`", it.Msg)
		} else {
			pass.Reportf(pos, "stale wire manifest: %s; regenerate with `make compat-manifest`", it.Msg)
		}
	}
	return nil
}

// BuildWireManifest derives the current wire contract from a
// type-checked package. Only exported declarations participate:
// string constants (Path* become routes, named-string-typed consts
// become enum members, the rest plain consts), structs with at least
// one json-tagged field, and the anonymous canonical struct inside a
// Key method (the job-key schema).
func BuildWireManifest(files []*ast.File, pkg *types.Package, info *types.Info) *WireManifest {
	m := &WireManifest{
		Schema:  WireCompatSchema,
		Routes:  map[string]string{},
		Consts:  map[string]string{},
		Enums:   map[string]map[string]string{},
		Structs: map[string][]WireField{},
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Const:
			bt, ok := obj.Type().Underlying().(*types.Basic)
			if !ok || bt.Info()&types.IsString == 0 {
				continue
			}
			val := constant.StringVal(obj.Val())
			if named, ok := obj.Type().(*types.Named); ok && named.Obj().Pkg() == pkg {
				en := named.Obj().Name()
				if m.Enums[en] == nil {
					m.Enums[en] = map[string]string{}
				}
				m.Enums[en][name] = val
			} else if strings.HasPrefix(name, "Path") {
				m.Routes[name] = val
			} else {
				m.Consts[name] = val
			}
		case *types.TypeName:
			if obj.IsAlias() {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok || !anyJSONTag(st) {
				continue
			}
			m.Structs[name] = wireFields(st, pkg)
		}
	}
	m.JobKey = jobKeyFields(files, info, pkg)
	return m
}

func anyJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if reflect.StructTag(st.Tag(i)).Get("json") != "" {
			return true
		}
	}
	return false
}

func wireFields(st *types.Struct, pkg *types.Package) []WireField {
	var out []WireField
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		out = append(out, WireField{
			Name: f.Name(),
			JSON: reflect.StructTag(st.Tag(i)).Get("json"),
			Type: wireTypeString(f.Type(), pkg),
		})
	}
	return out
}

// wireTypeString prints a type with package-local names bare and
// imported ones qualified by package name (stable across module
// relocations, unlike full import paths).
func wireTypeString(t types.Type, pkg *types.Package) string {
	return types.TypeString(t, func(p *types.Package) string {
		if p == pkg {
			return ""
		}
		return p.Name()
	})
}

// jobKeyFields extracts the field schema of the anonymous canonical
// struct marshaled inside a Key method — the byte layout the
// content-address is computed over.
func jobKeyFields(files []*ast.File, info *types.Info, pkg *types.Package) []WireField {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Key" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			var fields []WireField
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fields != nil {
					return false
				}
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if _, ok := cl.Type.(*ast.StructType); !ok {
					return true
				}
				if st, ok := info.TypeOf(cl).Underlying().(*types.Struct); ok {
					fields = wireFields(st, pkg)
				}
				return false
			})
			if fields != nil {
				return fields
			}
		}
	}
	return nil
}

// DiffWireManifests compares a committed manifest against the current
// contract and returns the differences, removals and mutations as
// breaking, pure additions as non-breaking drift. Any canonical
// job-key change — including additions and reordering — is breaking,
// because it changes every content address.
func DiffWireManifests(old, cur *WireManifest) []WireDiffItem {
	var items []WireDiffItem
	breaking := func(entity, format string, args ...any) {
		items = append(items, WireDiffItem{Entity: entity, Breaking: true, Msg: fmt.Sprintf(format, args...)})
	}
	additive := func(entity, format string, args ...any) {
		items = append(items, WireDiffItem{Entity: entity, Breaking: false, Msg: fmt.Sprintf(format, args...)})
	}
	if old.Schema != cur.Schema {
		breaking("", "manifest schema is %q, want %q", old.Schema, cur.Schema)
	}
	diffStringMap(old.Routes, cur.Routes, "route", breaking, additive)
	diffStringMap(old.Consts, cur.Consts, "constant", breaking, additive)
	for _, en := range sortedKeys(old.Enums) {
		if cur.Enums[en] == nil {
			breaking(en, "enum type %s removed", en)
			continue
		}
		oldM, curM := old.Enums[en], cur.Enums[en]
		for _, name := range sortedKeys(oldM) {
			v, ok := curM[name]
			switch {
			case !ok:
				breaking(en, "enum %s member %s removed", en, name)
			case v != oldM[name]:
				breaking(name, "enum %s member %s changed from %q to %q", en, name, oldM[name], v)
			}
		}
		for _, name := range sortedKeys(curM) {
			if _, ok := oldM[name]; !ok {
				additive(name, "enum %s member %s not in manifest", en, name)
			}
		}
	}
	for _, en := range sortedKeys(cur.Enums) {
		if old.Enums[en] == nil {
			additive(en, "enum type %s not in manifest", en)
		}
	}
	for _, name := range sortedKeys(old.Structs) {
		curFields, ok := cur.Structs[name]
		if !ok {
			breaking(name, "wire struct %s removed", name)
			continue
		}
		diffFields(name, old.Structs[name], curFields,
			func(format string, args ...any) { breaking(name, format, args...) },
			func(format string, args ...any) { additive(name, format, args...) })
	}
	for _, name := range sortedKeys(cur.Structs) {
		if _, ok := old.Structs[name]; !ok {
			additive(name, "wire struct %s not in manifest", name)
		}
	}
	// The job key is the content address: every change is breaking.
	keyBreaking := func(format string, args ...any) { breaking("JobSpec", format, args...) }
	diffFields("canonical job key", old.JobKey, cur.JobKey, keyBreaking, keyBreaking)
	if len(old.JobKey) == len(cur.JobKey) {
		for i := range old.JobKey {
			if old.JobKey[i].Name != cur.JobKey[i].Name {
				keyBreaking("canonical job key field order changed (%s is now %s)",
					old.JobKey[i].Name, cur.JobKey[i].Name)
				break
			}
		}
	}
	return items
}

func diffStringMap(old, cur map[string]string, kind string,
	breaking, additive func(entity, format string, args ...any)) {
	for _, name := range sortedKeys(old) {
		v, ok := cur[name]
		switch {
		case !ok:
			breaking("", "%s %s removed", kind, name)
		case v != old[name]:
			breaking(name, "%s %s changed from %q to %q", kind, name, old[name], v)
		}
	}
	for _, name := range sortedKeys(cur) {
		if _, ok := old[name]; !ok {
			additive(name, "%s %s not in manifest", kind, name)
		}
	}
}

func diffFields(owner string, old, cur []WireField,
	breaking, additive func(format string, args ...any)) {
	curByName := make(map[string]WireField, len(cur))
	for _, f := range cur {
		curByName[f.Name] = f
	}
	oldByName := make(map[string]WireField, len(old))
	for _, f := range old {
		oldByName[f.Name] = f
		c, ok := curByName[f.Name]
		if !ok {
			breaking("field %s.%s removed", owner, f.Name)
			continue
		}
		if c.JSON != f.JSON {
			breaking("field %s.%s json tag changed from %q to %q", owner, f.Name, f.JSON, c.JSON)
		}
		if c.Type != f.Type {
			breaking("field %s.%s retyped from %s to %s", owner, f.Name, f.Type, c.Type)
		}
	}
	for _, f := range cur {
		if _, ok := oldByName[f.Name]; !ok {
			additive("field %s.%s not in manifest", owner, f.Name)
		}
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeWireManifest renders a manifest in the canonical on-disk form
// (two-space indent, trailing newline), shared by the -write-compat
// generator so regeneration is byte-deterministic.
func EncodeWireManifest(m *WireManifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

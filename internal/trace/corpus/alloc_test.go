package corpus

import (
	"testing"

	"cbws/internal/trace"
)

// countSink counts events without retaining the batch.
type countSink struct{ events uint64 }

func (c *countSink) ConsumeBatch(batch []trace.Event) bool {
	c.events += uint64(len(batch))
	return true
}

// TestReplayZeroAllocs pins the zero-allocation contract of the replay
// hot path: after NewReplayer, replaying an uncompressed in-memory
// corpus (the mmap steady state) must not allocate at all, and the
// ReaderAt fallback must stay at zero too (its scratch buffer is
// preallocated).
func TestReplayZeroAllocs(t *testing.T) {
	events := randomEvents(4*DefaultBlockEvents, 42)
	data := packEvents(t, "alloc", events, Options{})

	run := func(name string, c *Corpus) {
		r := c.NewReplayer()
		var s countSink
		if err := r.Replay(&s); err != nil { // warm any lazy state
			t.Fatalf("%s: %v", name, err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := r.Replay(&s); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: replay allocates %.1f allocs/op, want 0", name, allocs)
		}
	}

	c, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	run("mmap-equivalent", c)

	cf, err := OpenReaderAt(byteReaderAtFull{data}, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	run("readerat-fallback", cf)
}

// TestDecodeBlockZeroAllocs pins the innermost decode loop.
func TestDecodeBlockZeroAllocs(t *testing.T) {
	events := randomEvents(DefaultBlockEvents, 43)
	data := packEvents(t, "alloc", events, Options{})
	c, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	e := &c.index[0]
	payload := c.data[e.offset : e.offset+uint64(e.storedLen)]
	r := c.NewReplayer()
	allocs := testing.AllocsPerRun(10, func() {
		if !r.decodeBlock(e, payload) {
			t.Fatal("decodeBlock failed")
		}
	})
	if allocs != 0 {
		t.Errorf("decodeBlock allocates %.1f allocs/op, want 0", allocs)
	}
}

// byteReaderAtFull adapts a slice to io.ReaderAt without the bytes
// package, so the fallback path under test sees a plain ReaderAt.
type byteReaderAtFull struct{ data []byte }

func (b byteReaderAtFull) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off >= int64(len(b.data)) {
		return 0, errShortRead
	}
	n := copy(p, b.data[off:])
	if n < len(p) {
		return n, errShortRead
	}
	return n, nil
}

var errShortRead = trace.ErrBadTrace // any sentinel; never hit in these tests

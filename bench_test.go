// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment) plus ablations of the CBWS design parameters that
// DESIGN.md calls out. Figure benchmarks run a reduced instruction
// window per iteration so the full suite stays fast; cmd/figures is the
// full-scale generator. Custom metrics surface the experiment's headline
// number (speedup, MPKI, coverage) alongside the usual ns/op.
package cbws_test

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"

	"cbws"
	"cbws/internal/core"
	"cbws/internal/harness"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
	"cbws/internal/prefetch/learned"
	"cbws/internal/sim"
	"cbws/internal/stats"
	"cbws/internal/trace"
	"cbws/internal/trace/corpus"
	"cbws/internal/workload"
)

// benchOptions returns a reduced-scale harness configuration.
func benchOptions() harness.Options {
	opts := harness.DefaultOptions()
	opts.Sim.MaxInstructions = 400_000
	opts.Sim.WarmupInstructions = 150_000
	opts.Parallel = runtime.GOMAXPROCS(0)
	return opts
}

// benchSpecs is a representative MI subset used by the per-figure
// benchmarks (one CBWS-friendly, one SMS-friendly, one divergent, one
// streaming benchmark).
func benchSpecs(b *testing.B) []workload.Spec {
	b.Helper()
	var out []workload.Spec
	for _, n := range []string{"stencil-default", "histo-large", "450.soplex-ref", "462.libquantum-ref"} {
		s, ok := workload.ByName(n)
		if !ok {
			b.Fatalf("workload %s missing", n)
		}
		out = append(out, s)
	}
	return out
}

// BenchmarkFigure1LoopResidency regenerates the loop-residency fractions
// of Figure 1 over the benchmark subset.
func BenchmarkFigure1LoopResidency(b *testing.B) {
	noPf, _ := harness.FactoryByName("none")
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		var fracs []float64
		for _, spec := range benchSpecs(b) {
			r, err := m.Get(spec, noPf)
			if err != nil {
				b.Fatal(err)
			}
			fracs = append(fracs, r.Metrics.LoopFrac)
		}
		b.ReportMetric(100*stats.Mean(fracs), "loop%")
	}
}

// BenchmarkFigure5Skew regenerates the differential-distribution census
// of Figure 5 for the paper's six workloads.
func BenchmarkFigure5Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cov []float64
		for _, name := range harness.Figure5Workloads {
			spec, _ := workload.ByName(name)
			c := core.NewCensus(16)
			trace.Limit{Gen: spec.Make(), Max: 300_000}.Generate(c)
			cov = append(cov, c.CoverageAt(0.25))
		}
		b.ReportMetric(100*stats.Mean(cov), "top25%cov")
	}
}

// BenchmarkFigure12MPKI regenerates the MPKI comparison of Figure 12
// over the subset × all seven schemes, reporting one headline metric
// per scheme keyed by its registry name.
func BenchmarkFigure12MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		mpki := make(map[string][]float64)
		for _, spec := range benchSpecs(b) {
			for _, f := range harness.Prefetchers() {
				r, err := m.Get(spec, f)
				if err != nil {
					b.Fatal(err)
				}
				mpki[f.Name] = append(mpki[f.Name], r.Metrics.MPKI())
			}
		}
		for _, f := range harness.Prefetchers() {
			b.ReportMetric(stats.Mean(mpki[f.Name]), "mpki-"+f.Name)
		}
	}
}

// BenchmarkFigure13Timeliness regenerates the timeliness/accuracy
// classification of Figure 13 for the CBWS+SMS scheme.
func BenchmarkFigure13Timeliness(b *testing.B) {
	f, _ := harness.FactoryByName("cbws+sms")
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		var timely, wrong []float64
		for _, spec := range benchSpecs(b) {
			r, err := m.Get(spec, f)
			if err != nil {
				b.Fatal(err)
			}
			timely = append(timely, r.Metrics.TimelyFrac())
			wrong = append(wrong, r.Metrics.WrongFrac())
		}
		b.ReportMetric(100*stats.Mean(timely), "timely%")
		b.ReportMetric(100*stats.Mean(wrong), "wrong%")
	}
}

// BenchmarkFigure14Speedup regenerates the headline IPC comparison of
// Figure 14: CBWS+SMS speedup over SMS.
func BenchmarkFigure14Speedup(b *testing.B) {
	smsF, _ := harness.FactoryByName("sms")
	hybridF, _ := harness.FactoryByName("cbws+sms")
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		var speedups []float64
		for _, spec := range benchSpecs(b) {
			base, err := m.Get(spec, smsF)
			if err != nil {
				b.Fatal(err)
			}
			r, err := m.Get(spec, hybridF)
			if err != nil {
				b.Fatal(err)
			}
			speedups = append(speedups, r.Metrics.IPC()/base.Metrics.IPC())
		}
		b.ReportMetric(stats.GeoMean(speedups), "speedup-vs-sms")
	}
}

// BenchmarkFigure15PerfCost regenerates the performance/cost comparison
// of Figure 15: IPC per byte fetched, CBWS+SMS normalized to no-prefetch.
func BenchmarkFigure15PerfCost(b *testing.B) {
	noneF, _ := harness.FactoryByName("none")
	hybridF, _ := harness.FactoryByName("cbws+sms")
	for i := 0; i < b.N; i++ {
		m := harness.NewMatrix(benchOptions())
		var ratios []float64
		for _, spec := range benchSpecs(b) {
			base, err := m.Get(spec, noneF)
			if err != nil {
				b.Fatal(err)
			}
			r, err := m.Get(spec, hybridF)
			if err != nil {
				b.Fatal(err)
			}
			ratios = append(ratios, r.Metrics.PerfPerByte()/base.Metrics.PerfPerByte())
		}
		b.ReportMetric(stats.GeoMean(ratios), "perfcost-vs-none")
	}
}

// BenchmarkTableIIIStorage recomputes the storage-budget comparison.
func BenchmarkTableIIIStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cbwsBits uint64
		for _, f := range harness.Prefetchers() {
			p := f.New()
			if f.Name == "cbws" {
				cbwsBits = p.StorageBits()
			} else {
				_ = p.StorageBits()
			}
		}
		b.ReportMetric(float64(cbwsBits)/8, "cbws-bytes")
	}
}

// ablationRun simulates stencil with the given CBWS configuration and
// returns IPC (stencil is the paper's motivating, CBWS-friendly
// workload, so parameter effects show directly).
func ablationRun(b *testing.B, mk func() cbws.Prefetcher, cfg sim.Config) float64 {
	b.Helper()
	spec, _ := workload.ByName("stencil-default")
	res, err := sim.Run(cfg, spec.Make(), mk())
	if err != nil {
		b.Fatal(err)
	}
	return res.Metrics.IPC()
}

func ablationConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.MaxInstructions = 400_000
	cfg.WarmupInstructions = 100_000
	return cfg
}

// BenchmarkAblationTableSize sweeps the differential history table size
// (paper: 16 entries).
func BenchmarkAblationTableSize(b *testing.B) {
	for _, entries := range []int{4, 16, 64, 256} {
		entries := entries
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.New(core.Config{TableEntries: entries})
				}, ablationConfig())
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationSteps sweeps the multi-step prediction depth
// (paper: 4).
func BenchmarkAblationSteps(b *testing.B) {
	for _, steps := range []int{1, 2, 4} {
		steps := steps
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.New(core.Config{Steps: steps})
				}, ablationConfig())
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationVectorLen sweeps the CBWS trace limit (paper: 16
// lines, covering >98% of blocks).
func BenchmarkAblationVectorLen(b *testing.B) {
	for _, maxVec := range []int{4, 8, 16, 32} {
		maxVec := maxVec
		b.Run(fmt.Sprintf("lines=%d", maxVec), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.New(core.Config{MaxVector: maxVec})
				}, ablationConfig())
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationHashBits sweeps the bit-select hash width
// (paper: 12 bits).
func BenchmarkAblationHashBits(b *testing.B) {
	for _, bits := range []int{6, 12, 16} {
		bits := bits
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.New(core.Config{HashBits: bits})
				}, ablationConfig())
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationIssuePolicy compares the inclusive (default) and
// exclusive CBWS+SMS integration policies.
func BenchmarkAblationIssuePolicy(b *testing.B) {
	policies := map[string]func() cbws.Prefetcher{
		"inclusive": func() cbws.Prefetcher {
			return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
		},
		"exclusive": func() cbws.Prefetcher {
			return core.NewExclusiveComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
		},
	}
	for name, mk := range policies {
		mk := mk
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ipc := ablationRun(b, mk, ablationConfig())
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationMemoryLatency sweeps the memory latency, showing how
// the CBWS lookahead interacts with the latency it must hide.
func BenchmarkAblationMemoryLatency(b *testing.B) {
	for _, lat := range []uint64{150, 300, 600} {
		lat := lat
		b.Run(fmt.Sprintf("latency=%d", lat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Memory.MemoryLatency = lat
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.New(core.Config{})
				}, cfg)
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// Component micro-benchmarks: raw simulation throughput.

// countingBatchSink drains a batch pipeline while only counting events,
// isolating generation + delivery cost from simulation cost.
type countingBatchSink struct{ events uint64 }

func (c *countingBatchSink) ConsumeBatch(batch []trace.Event) bool {
	c.events += uint64(len(batch))
	return true
}

// BenchmarkPipelineEventsPerSec measures the raw trace pipeline — a
// workload generator driven through trace.Limit into a batch sink with
// no timing simulation attached — in millions of events per second.
// This is the path the batched, buffer-reusing redesign targets: the
// per-event cost is a store into a reused buffer rather than an
// interface call and a closure per event.
func BenchmarkPipelineEventsPerSec(b *testing.B) {
	spec, _ := workload.ByName("stencil-default")
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cs countingBatchSink
		trace.Limit{Gen: spec.Make(), Max: 300_000}.GenerateBatches(&cs)
		events += cs.events
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/1e6/s, "Mevents/s")
	}
}

// BenchmarkCorpusReplayEventsPerSec measures replay of a packed CBWC
// corpus — the same stencil stream as BenchmarkPipelineEventsPerSec,
// but decoded from the columnar mmap instead of regenerated — in
// millions of events per second with zero allocations per replay.
func BenchmarkCorpusReplayEventsPerSec(b *testing.B) {
	spec, _ := workload.ByName("stencil-default")
	path := filepath.Join(b.TempDir(), "stencil.cbwc")
	if _, err := corpus.Pack(path, spec.Make(), 300_000, corpus.Options{}); err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Open(path, corpus.OpenOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	r := c.NewReplayer()
	var cs countingBatchSink
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Replay(&cs); err != nil {
			b.Fatal(err)
		}
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(cs.events)/1e6/s, "Mevents/s")
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, pf := range []string{"none", "sms", "cbws+sms"} {
		pf := pf
		b.Run(pf, func(b *testing.B) {
			f, _ := harness.FactoryByName(pf)
			spec, _ := workload.ByName("stencil-default")
			cfg := sim.DefaultConfig()
			cfg.MaxInstructions = 300_000
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg, spec.Make(), f.New()); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(300_000) // "bytes" = simulated instructions
		})
	}
}

// BenchmarkSimulatorThroughputProbed is BenchmarkSimulatorThroughput
// with a time-series probe attached at the default sampling interval —
// the observability acceptance target is that probed runs stay within a
// few percent of the unobserved path, with zero steady-state allocs
// attributable to sampling.
func BenchmarkSimulatorThroughputProbed(b *testing.B) {
	for _, pf := range []string{"none", "cbws+sms"} {
		pf := pf
		b.Run(pf, func(b *testing.B) {
			f, _ := harness.FactoryByName(pf)
			spec, _ := workload.ByName("stencil-default")
			cfg := sim.DefaultConfig()
			cfg.MaxInstructions = 300_000
			ts := sim.NewTimeSeries(int(cfg.MaxInstructions/sim.DefaultSampleInterval) + 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts.Reset()
				if _, err := sim.RunContext(context.Background(), cfg, spec.Make(), f.New(),
					sim.WithProbe(ts)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(300_000) // "bytes" = simulated instructions
		})
	}
}

func BenchmarkCBWSOnAccess(b *testing.B) {
	p := core.New(core.Config{})
	p.Reset()
	drop := func(l mem.LineAddr) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			p.OnBlockEnd(0, drop)
			p.OnBlockBegin(0)
		}
		l := mem.LineAddr(1<<20 + i*3)
		p.OnAccess(prefetch.Access{Addr: l.Byte(), Line: l}, drop)
	}
}

// BenchmarkPythiaOnAccess measures the Pythia-style agent's steady-
// state hot path (reward scan + feature hash + argmax + queue insert)
// on a strided miss stream; allocs/op is pinned at 0 by benchgate.
func BenchmarkPythiaOnAccess(b *testing.B) {
	p := learned.NewPythia(learned.PythiaConfig{})
	drop := func(l mem.LineAddr) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := mem.LineAddr(1<<20 + i*3)
		p.OnAccess(prefetch.Access{PC: 0x401000, Addr: l.Byte(), Line: l}, drop)
	}
}

// BenchmarkGazeOnAccess measures the Gaze-style prefetcher's steady-
// state hot path (active-table CAM scan + footprint/order update, with
// periodic generation turnover) on a region-local stream; allocs/op is
// pinned at 0 by benchgate.
func BenchmarkGazeOnAccess(b *testing.B) {
	g := learned.NewGaze(learned.GazeConfig{})
	drop := func(l mem.LineAddr) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := mem.LineAddr(uint64(1+i%9) << 6)
		g.OnAccess(prefetch.Access{PC: 0x400500, Addr: base.Byte(), Line: base.Add(int64(i % 13))}, drop)
		if i%17 == 0 {
			g.OnCacheEvict(base)
		}
	}
}

// BenchmarkAblationPrefetchQueue compares direct prefetch issue with a
// bounded hardware prefetch queue at several depths.
func BenchmarkAblationPrefetchQueue(b *testing.B) {
	for _, depth := range []int{0, 8, 32} {
		depth := depth
		name := fmt.Sprintf("depth=%d", depth)
		if depth == 0 {
			name = "direct"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Memory.PrefetchQueueDepth = depth
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
				}, cfg)
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkAblationBranchPrediction compares the tournament predictor
// against an ideal front end.
func BenchmarkAblationBranchPrediction(b *testing.B) {
	for _, ideal := range []bool{false, true} {
		ideal := ideal
		name := "tournament"
		if ideal {
			name = "ideal"
		}
		b.Run(name, func(b *testing.B) {
			spec, _ := workload.ByName("450.soplex-ref")
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.IdealBranchPrediction = ideal
				res, err := sim.Run(cfg, spec.Make(), cbws.NewCBWSPlusSMS())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Metrics.IPC(), "ipc")
				b.ReportMetric(100*res.Metrics.MispredictRate(), "mispredict%")
			}
		})
	}
}

// BenchmarkExtensionAMPM runs the AMPM extension baseline on stencil,
// illustrating the zone-size limitation the paper's related-work section
// describes (the plane-sized strides escape AMPM's access maps).
func BenchmarkExtensionAMPM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ipc := ablationRun(b, func() cbws.Prefetcher {
			return prefetch.NewAMPM(prefetch.AMPMConfig{})
		}, ablationConfig())
		b.ReportMetric(ipc, "ipc")
	}
}

// BenchmarkAblationMemoryBandwidth compares the flat-latency memory of
// Table II against a bandwidth-limited model where prefetch traffic
// contends with demand fills — the contention that makes wrong
// prefetches expensive (the concern behind Figure 15).
func BenchmarkAblationMemoryBandwidth(b *testing.B) {
	for _, channels := range []int{0, 4, 16} {
		channels := channels
		name := fmt.Sprintf("channels=%d", channels)
		if channels == 0 {
			name = "flat"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Memory.MemoryChannels = channels
				ipc := ablationRun(b, func() cbws.Prefetcher {
					return core.NewComposite(core.New(core.Config{}), prefetch.NewSMS(prefetch.SMSConfig{}))
				}, cfg)
				b.ReportMetric(ipc, "ipc")
			}
		})
	}
}

// BenchmarkExtensionMarkov runs the Markov pair-correlation extension
// baseline on mcf (pointer-heavy, the pattern class it targets).
func BenchmarkExtensionMarkov(b *testing.B) {
	spec, _ := workload.ByName("429.mcf-ref")
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		res, err := sim.Run(cfg, spec.Make(), prefetch.NewMarkov(prefetch.MarkovConfig{}))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.IPC(), "ipc")
	}
}

package core

import (
	"fmt"
	"strings"
)

// TableEntryView is a read-only snapshot of one differential history
// table slot, for debugging and introspection.
type TableEntryView struct {
	Valid bool
	Tag   uint16
	Diff  Diff
}

// TableDump snapshots the differential history table.
func (p *Prefetcher) TableDump() []TableEntryView {
	out := make([]TableEntryView, len(p.table))
	for i, e := range p.table {
		v := TableEntryView{Valid: e.valid, Tag: e.tag}
		if e.valid {
			v.Diff = make(Diff, 0, len(e.diff))
			for _, s := range e.diff {
				if s == invalidStride {
					continue
				}
				v.Diff = append(v.Diff, int64(s))
			}
		}
		out[i] = v
	}
	return out
}

// CurrentCBWS returns the working set being traced for the active block
// (empty outside blocks).
func (p *Prefetcher) CurrentCBWS() Vector {
	return append(Vector(nil), p.cur...)
}

// LastCBWS returns the working set of the i-th previous block instance
// (0 = most recent), or nil if none is recorded.
func (p *Prefetcher) LastCBWS(i int) Vector {
	if i < 0 || i >= len(p.last) || p.last[i] == nil {
		return nil
	}
	return append(Vector(nil), p.last[i]...)
}

// String summarizes the prefetcher state: active context, table
// occupancy and counters.
func (p *Prefetcher) String() string {
	var b strings.Builder
	occupied := 0
	for _, e := range p.table {
		if e.valid {
			occupied++
		}
	}
	fmt.Fprintf(&b, "cbws{block=%d inBlock=%v confident=%v table=%d/%d", p.curBlock, p.inBlock, p.confident, occupied, len(p.table))
	fmt.Fprintf(&b, " blocks=%d hits=%d misses=%d predicted=%d overflows=%d}",
		p.Stats.Blocks, p.Stats.TableHits, p.Stats.TableMisses, p.Stats.LinesPredicted, p.Stats.Overflows)
	return b.String()
}

package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteConfig serializes cfg as indented JSON.
func WriteConfig(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// ReadConfig parses a JSON configuration. Fields left out of the JSON
// keep the values of base, so a config file only needs to state what it
// changes from the Table II defaults.
func ReadConfig(r io.Reader, base Config) (Config, error) {
	cfg := base
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("sim: parsing config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// LoadConfig reads a JSON configuration file over the Table II defaults.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("sim: %w", err)
	}
	defer f.Close()
	return ReadConfig(f, DefaultConfig())
}

// Validate checks the full system configuration.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.Memory.L1.Validate(); err != nil {
		return err
	}
	if err := c.Memory.L2.Validate(); err != nil {
		return err
	}
	if !c.IdealBranchPrediction {
		if err := c.Branch.Validate(); err != nil {
			return err
		}
	}
	if c.WarmupInstructions > 0 && c.MaxInstructions > 0 &&
		c.WarmupInstructions >= c.MaxInstructions {
		return fmt.Errorf("sim: warmup (%d) must be below the instruction limit (%d)",
			c.WarmupInstructions, c.MaxInstructions)
	}
	return nil
}

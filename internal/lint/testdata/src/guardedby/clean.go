package guardedby

import "sync"

func newBox() *box {
	// Composite-literal construction happens before publication: no
	// lock needed.
	return &box{m: map[string]int{}, items: make([]int, 4)}
}

func (b *box) get(k string) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[k]
	return v, ok
}

func (b *box) put(k string, v int) {
	b.mu.Lock()
	b.m[k] = v
	b.mu.Unlock()
}

func (b *box) lenItems() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return len(b.items)
}

func (b *box) setItem(i, v int) {
	b.rw.Lock()
	b.items[i] = v
	b.rw.Unlock()
}

func (b *box) sum() int {
	b.mu.Lock()
	total := 0
	for _, v := range b.m {
		total += v
	}
	if total > 10 {
		b.mu.Unlock()
		return total
	}
	b.n = total
	b.mu.Unlock()
	return total
}

func (b *box) bump() {
	b.mu.Lock()
	b.bumpLocked()
	b.mu.Unlock()
}

func (b *box) snapshot() int {
	// Locking inside an immediately-invoked closure is tracked from
	// the closure's own empty entry state.
	return func() int {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.n
	}()
}

type owner struct {
	b *box
}

func (o *owner) touch() {
	o.b.mu.Lock()
	o.b.n = 5
	o.b.mu.Unlock()
}

func handoff(boxes map[string]*box) {
	var wg sync.WaitGroup
	for _, b := range boxes {
		wg.Add(1)
		go func(b *box) {
			defer wg.Done()
			b.mu.Lock()
			b.n++
			b.mu.Unlock()
		}(b)
	}
	wg.Wait()
}

package ir

import (
	"strings"
	"testing"
)

// loopProgram builds a simple counted loop:
//
//	r0 = 0; r1 = N
//	loop: r2 = (r0 < r1); brz r2, exit
//	       load r3, [r0*8 + base]; r0++
//	       jmp loop
//	exit: ret
func loopProgram(n int64) *Builder {
	b := NewBuilder("loop")
	i := b.Const(0)
	limit := b.Const(n)
	cond := b.Reg()
	addr := b.Reg()
	val := b.Reg()
	b.Label("loop")
	b.CmpLT(cond, i, limit)
	b.BrZ(cond, "exit")
	b.MulI(addr, i, 8)
	b.Load(val, addr, 1<<20)
	b.AddI(i, i, 1)
	b.Jmp("loop")
	b.Label("exit")
	b.Ret()
	return b
}

func TestBuilderBuildsValidProgram(t *testing.T) {
	p, err := loopProgram(10).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if p.NumRegs != 5 {
		t.Errorf("NumRegs = %d", p.NumRegs)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	b.Ret()
	if _, err := b.Build(); err == nil {
		t.Error("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate label")
		}
	}()
	b := NewBuilder("dup")
	b.Label("x")
	b.Label("x")
}

func TestValidateEmptyProgram(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Error("empty program must not validate")
	}
}

func TestValidateBadTerminator(t *testing.T) {
	p := &Program{Name: "noterm", NumRegs: 1, Instrs: []Instr{{Op: Const, Dst: 0, Imm: 1}}}
	if err := p.Validate(); err == nil {
		t.Error("program without terminator must not validate")
	}
}

func TestValidateRegisterRange(t *testing.T) {
	p := &Program{Name: "badreg", NumRegs: 1, Instrs: []Instr{
		{Op: Add, Dst: 0, A: 0, B: 5}, // r5 out of range
		{Op: Ret},
	}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range register must not validate")
	}
}

func TestValidateBranchTarget(t *testing.T) {
	p := &Program{Name: "badbr", NumRegs: 1, Instrs: []Instr{
		{Op: Jmp, Target: 99},
		{Op: Ret},
	}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target must not validate")
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !Jmp.IsBranch() || !BrNZ.IsBranch() || !BrZ.IsBranch() {
		t.Error("branch predicates")
	}
	if Add.IsBranch() || Ret.IsBranch() {
		t.Error("non-branches misclassified")
	}
	if !Ret.IsTerminator() || !Jmp.IsTerminator() {
		t.Error("terminator predicates")
	}
	if Load.IsTerminator() {
		t.Error("load is not a terminator")
	}
}

func TestDisassembly(t *testing.T) {
	p := loopProgram(3).MustBuild()
	s := p.String()
	for _, want := range []string{"cmplt", "brz", "load", "jmp", "ret", `program "loop"`} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func TestInstrStrings(t *testing.T) {
	cases := map[string]Instr{
		"r1 = const 5":      {Op: Const, Dst: 1, Imm: 5},
		"r2 = addi r1, 4":   {Op: AddI, Dst: 2, A: 1, Imm: 4},
		"r0 = load [r1+16]": {Op: Load, Dst: 0, A: 1, Imm: 16},
		"store [r1+8], r2":  {Op: Store, A: 1, Imm: 8, B: 2},
		"brnz r3, @7":       {Op: BrNZ, A: 3, Target: 7},
		"block_begin 2":     {Op: BlockBegin, Imm: 2},
		"r4 = cmplt r1, r2": {Op: CmpLT, Dst: 4, A: 1, B: 2},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b := NewBuilder("bad")
	b.Jmp("missing")
	b.Ret()
	b.MustBuild()
}

package apiv1

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Error is a non-2xx response decoded from the server's error
// envelope. Transport failures (connection refused, timeouts) are NOT
// Errors — they surface as plain errors, which is how callers
// distinguish "the worker answered no" from "the worker is gone"
// (cluster failover reacts only to the latter).
type Error struct {
	Code int    // HTTP status
	Msg  string // server's error message
}

func (e *Error) Error() string { return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Code) }

// decodeError builds an *Error from a non-2xx response body.
func decodeError(resp *http.Response, body []byte) error {
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		eb.Error = strings.TrimSpace(string(body))
	}
	return &Error{Code: resp.StatusCode, Msg: eb.Error}
}

// Client speaks the v1 API to one daemon. The zero value is not usable;
// construct with NewClient. All methods are safe for concurrent use —
// cbwsload drives one Client per worker from many goroutines.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8344".
	Base string
	// HTTP is the underlying client (NewClient sets a 30s timeout).
	HTTP *http.Client
	// Budget bounds how long Submit keeps retrying 429 backpressure and
	// how long WaitDone polls (default 10m).
	Budget time.Duration
	// Poll is the WaitDone status polling period (default 100ms).
	Poll time.Duration
	// Jitter returns a value in [0,1) used to spread 429 retries: the
	// actual wait is Retry-After + jitter·(Retry-After/2), bounded to
	// [1x, 1.5x] of the server's ask, so a fleet of clients bounced by
	// the same 429 does not thundering-herd the worker in lockstep.
	// Must be safe for concurrent use. Nil uses the process-global
	// math/rand/v2 source; tests inject a deterministic one.
	Jitter func() float64
	// Logf, when set, receives human-readable retry notices
	// ("queue full, retrying in …"). Nil is silent.
	Logf func(format string, args ...any)
	// OnBackpressure, when set, observes every 429-induced sleep with
	// the jittered wait. Load harnesses count retries through it. Must
	// be safe for concurrent use.
	OnBackpressure func(wait time.Duration)
}

// NewClient builds a Client for the daemon at base with the defaults
// every CLI uses: 30s per-request timeout, 10m retry/poll budget,
// 100ms poll period.
func NewClient(base string) *Client {
	return &Client{
		Base:   strings.TrimRight(base, "/"),
		HTTP:   &http.Client{Timeout: 30 * time.Second},
		Budget: 10 * time.Minute,
		Poll:   100 * time.Millisecond,
	}
}

// Submit posts one job body, sleeping out 429 backpressure: on
// queue-full the server's Retry-After is honored (jittered, with a
// floor) and the request retried until the Budget is spent.
func (c *Client) Submit(body []byte) (JobView, error) {
	deadline := time.Now().Add(c.Budget)
	for {
		resp, err := c.HTTP.Post(c.Base+PathJobs, "application/json", bytes.NewReader(body))
		if err != nil {
			return JobView{}, err
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return JobView{}, err
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			var view JobView
			if err := json.Unmarshal(raw, &view); err != nil {
				return JobView{}, fmt.Errorf("decoding submit response: %w", err)
			}
			return view, nil
		case resp.StatusCode == http.StatusTooManyRequests:
			wait := c.retryAfter(resp)
			if time.Now().Add(wait).After(deadline) {
				return JobView{}, fmt.Errorf("queue stayed full for %s: %w", c.Budget, decodeError(resp, raw))
			}
			if c.Logf != nil {
				c.Logf("queue full, retrying in %s", wait)
			}
			if c.OnBackpressure != nil {
				c.OnBackpressure(wait)
			}
			time.Sleep(wait)
		default:
			return JobView{}, decodeError(resp, raw)
		}
	}
}

// retryAfter turns a 429's Retry-After header into the jittered wait.
// Unparseable or zero values are floored at 100ms so the retry loop
// never spins.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	base := 100 * time.Millisecond
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		base = time.Duration(secs) * time.Second
	}
	j := rand.Float64
	if c.Jitter != nil {
		j = c.Jitter
	}
	return base + time.Duration(j()*float64(base)/2)
}

// GetJSON fetches a v1 path and decodes the 200 body into v.
func (c *Client) GetJSON(path string, v any) error {
	resp, err := c.HTTP.Get(c.Base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp, raw)
	}
	return json.Unmarshal(raw, v)
}

// Status reads one job's state by content address.
func (c *Client) Status(key string) (JobView, error) {
	var view JobView
	err := c.GetJSON(PathJobs+"/"+key, &view)
	return view, err
}

// Result fetches the encoded run record for a completed job.
func (c *Client) Result(key string) ([]byte, error) {
	resp, err := c.HTTP.Get(c.Base + PathResults + "/" + key)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp, raw)
	}
	return raw, nil
}

// WaitDone polls a job's status until it reaches a terminal state,
// erroring on failed/canceled jobs and when the Budget runs out.
func (c *Client) WaitDone(key string) (JobView, error) {
	deadline := time.Now().Add(c.Budget)
	for {
		view, err := c.Status(key)
		if err != nil {
			return view, err
		}
		switch view.Status {
		case StatusDone:
			return view, nil
		case StatusFailed, StatusCanceled:
			return view, fmt.Errorf("job %s %s: %s", key[:12], view.Status, view.Error)
		}
		if time.Now().After(deadline) {
			return view, fmt.Errorf("job %s still %s after %s", key[:12], view.Status, c.Budget)
		}
		time.Sleep(c.Poll)
	}
}

// Healthz reads the daemon's liveness body.
func (c *Client) Healthz() (Healthz, error) {
	var h Healthz
	err := c.GetJSON(PathHealthz, &h)
	return h, err
}

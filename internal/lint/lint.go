// Package lint holds the repo's custom static analyzers — the
// compile-time-adjacent enforcement of the three invariants the test
// suite otherwise only catches dynamically:
//
//   - hotpathalloc: functions annotated //cbws:hotpath (and every
//     module function they statically call) must not contain
//     allocating constructs, so the AllocsPerRun pins cannot be
//     broken by an innocent-looking edit.
//   - determinism: the packages whose output feeds the golden
//     manifests must not iterate maps into ordered output, read wall
//     clocks, use the unseeded global rand, or rely on unstable
//     sorts.
//   - checkguard: runtime invariant hooks (check.Assertf / Failf and
//     the unexported check* helpers that wrap them) must be gated on
//     check.Enabled or confined to cbwscheck-tagged files, and the
//     reference models in internal/check must not import the
//     optimized packages they validate.
//   - batchalias: BatchSink implementations must not retain or
//     mutate the batch slice, whose backing array the producer reuses.
//
// The v2 analyzers guard the concurrent, clustered system:
//
//   - guardedby: fields annotated //cbws:guardedby <mutex> may only be
//     accessed while the named sibling sync.Mutex/RWMutex is held;
//     *Locked methods carry the obligation to their callers via
//     object facts.
//   - golifecycle: no fire-and-forget goroutines in the long-lived
//     packages — every go statement must join through a WaitGroup, a
//     received result channel, or context cancellation.
//   - wirecompat: the api/v1 wire contract (struct shapes, json tags,
//     routes, job-key schema) is frozen in api/v1/compat.json;
//     breaking drift fails lint until the manifest is bumped.
//   - atomicdiscipline: sync/atomic state is never mixed with plain
//     loads/stores, wrapper values are never copied, and expvar names
//     follow the cbwsd convention.
//
// False positives are silenced in place with
//
//	//lint:ignore cbws/<analyzer> <reason>
//
// on (or immediately above) the flagged line; the reason is mandatory.
// The cmd/cbwslint driver runs the whole suite; fixture tests under
// testdata/ are the executable specification.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"cbws/internal/lint/analysis"
)

// Analyzers returns the full suite in a deterministic order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc, Determinism, CheckGuard, BatchAlias,
		GuardedBy, GoLifecycle, WireCompat, AtomicDiscipline,
	}
}

// ByName returns the analyzer with the given name, if present.
func ByName(name string) (*analysis.Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// calleeOf resolves the static callee of call, or nil when the callee
// is dynamic (a func value, an interface method, a builtin, or a type
// conversion).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if types.IsInterface(recv.Type()) {
			return nil // dynamic dispatch
		}
	}
	return fn
}

// methodOf resolves the called function including interface methods,
// for checks that care about the method's name and shape rather than
// the concrete implementation (e.g. Write on an io.Writer).
func methodOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the named function of a package
// whose import path is pathSuffix or ends in "/"+pathSuffix, which
// matches both the real module layout and relocated fixture imports.
func isPkgFunc(fn *types.Func, pathSuffix, name string) bool {
	return fn != nil && fn.Name() == name && pkgPathHasSuffix(fn.Pkg(), pathSuffix)
}

func pkgPathHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// isCheckEnabled reports whether expr denotes the check.Enabled gate.
func isCheckEnabled(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return false
	}
	return obj.Name() == "Enabled" && pkgPathHasSuffix(obj.Pkg(), "internal/check")
}

// guardsCheckEnabled reports whether cond establishes check.Enabled,
// either alone or as a conjunct (check.Enabled && ...).
func guardsCheckEnabled(info *types.Info, cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if e.Op.String() == "&&" {
			return guardsCheckEnabled(info, e.X) || guardsCheckEnabled(info, e.Y)
		}
		return false
	default:
		return isCheckEnabled(info, cond)
	}
}

// inModule reports whether pkg belongs to the module under analysis.
func inModule(pkg *types.Package, modulePath string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}

// rootIdent peels selectors, indexing, slicing, dereferences, and
// parens off expr and returns the base identifier's object, or nil.
func rootIdent(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.UnaryExpr:
			expr = e.X
		case *ast.CallExpr:
			return nil // function result: no stable root
		default:
			return nil
		}
	}
}

package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cbws/internal/sim"
	"cbws/internal/stats"
	"cbws/internal/workload"
)

// GoldenSchema versions the manifest layout; bump it when the cell
// hash input or the manifest structure changes.
const GoldenSchema = "cbws-golden/1"

// GoldenCell pins one matrix cell: the workload × prefetcher pair and
// a SHA-256 over the canonical JSON encoding of its final metrics.
type GoldenCell struct {
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher"`
	Hash       string `json:"hash"`
}

// GoldenManifest is the determinism manifest for one full simulation
// matrix: every cell's metrics hash plus a matrix hash over all of
// them. Two runs of the same binary on the same configuration must
// produce byte-identical manifests regardless of Fill parallelism.
type GoldenManifest struct {
	Schema       string       `json:"schema"`
	Instructions uint64       `json:"instructions"`
	Warmup       uint64       `json:"warmup"`
	MatrixHash   string       `json:"matrix_hash"`
	Cells        []GoldenCell `json:"cells"`
}

// CellHash computes the canonical hash of one simulation result — the
// same hash that golden manifests pin per cell — so remote consumers
// (cbwsctl) can verify a served result against golden/seed.json without
// rerunning the simulation.
func CellHash(res sim.Result) string { return goldenCellHash(res) }

// goldenCellHash computes the canonical hash of one simulation result:
// SHA-256 over the fixed-field-order JSON of the names and every final
// metric. Struct field order makes encoding/json deterministic here.
func goldenCellHash(res sim.Result) string {
	canonical := struct {
		Workload   string        `json:"workload"`
		Prefetcher string        `json:"prefetcher"`
		Metrics    stats.Metrics `json:"metrics"`
	}{res.Workload, res.Prefetcher, res.Metrics}
	b, err := json.Marshal(canonical)
	if err != nil {
		// Metrics is a plain struct of numbers; this cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// BuildGolden fills the matrix over specs × factories and assembles
// the manifest. Cells are ordered by workload name then prefetcher
// name, and the matrix hash covers the ordered cell hashes, so the
// output is independent of simulation scheduling.
func BuildGolden(m *Matrix, specs []workload.Spec, factories []Factory) (*GoldenManifest, error) {
	if err := m.Fill(specs, factories); err != nil {
		return nil, err
	}
	g := &GoldenManifest{
		Schema:       GoldenSchema,
		Instructions: m.opts.Sim.MaxInstructions,
		Warmup:       m.opts.Sim.WarmupInstructions,
	}
	for _, s := range specs {
		for _, f := range factories {
			res, err := m.Get(s, f)
			if err != nil {
				return nil, err
			}
			g.Cells = append(g.Cells, GoldenCell{
				Workload:   s.Name,
				Prefetcher: f.Name,
				Hash:       goldenCellHash(res),
			})
		}
	}
	sort.SliceStable(g.Cells, func(i, j int) bool {
		if g.Cells[i].Workload != g.Cells[j].Workload {
			return g.Cells[i].Workload < g.Cells[j].Workload
		}
		return g.Cells[i].Prefetcher < g.Cells[j].Prefetcher
	})
	h := sha256.New()
	for _, c := range g.Cells {
		fmt.Fprintf(h, "%s/%s:%s\n", c.Workload, c.Prefetcher, c.Hash)
	}
	g.MatrixHash = hex.EncodeToString(h.Sum(nil))
	return g, nil
}

// Encode renders the manifest in its canonical byte form: indented
// JSON with a trailing newline. Golden files are compared byte for
// byte, so this is the only encoder.
func (g *GoldenManifest) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteGolden writes the manifest to path in canonical form.
func WriteGolden(path string, g *GoldenManifest) error {
	b, err := g.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadGolden loads a manifest written by WriteGolden.
func ReadGolden(path string) (*GoldenManifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g := &GoldenManifest{}
	if err := json.Unmarshal(b, g); err != nil {
		return nil, fmt.Errorf("golden %s: %w", path, err)
	}
	return g, nil
}

// DiffGolden compares two manifests and returns human-readable
// mismatch lines, empty when they pin identical behaviour. It reports
// schema/config divergence, cells present on only one side, and cells
// whose hashes differ.
func DiffGolden(want, got *GoldenManifest) []string {
	var out []string
	if want.Schema != got.Schema {
		out = append(out, fmt.Sprintf("schema: want %s, got %s", want.Schema, got.Schema))
	}
	if want.Instructions != got.Instructions || want.Warmup != got.Warmup {
		out = append(out, fmt.Sprintf("window: want %d/%d instructions/warmup, got %d/%d",
			want.Instructions, want.Warmup, got.Instructions, got.Warmup))
	}
	key := func(c GoldenCell) string { return c.Workload + "/" + c.Prefetcher }
	wantCells := make(map[string]string, len(want.Cells))
	for _, c := range want.Cells {
		wantCells[key(c)] = c.Hash
	}
	seen := make(map[string]bool, len(got.Cells))
	for _, c := range got.Cells {
		k := key(c)
		seen[k] = true
		switch h, ok := wantCells[k]; {
		case !ok:
			out = append(out, fmt.Sprintf("%s: not in golden manifest", k))
		case h != c.Hash:
			out = append(out, fmt.Sprintf("%s: hash diverged (want %.12s…, got %.12s…)", k, h, c.Hash))
		}
	}
	for _, c := range want.Cells {
		if !seen[key(c)] {
			out = append(out, fmt.Sprintf("%s: missing from this run", key(c)))
		}
	}
	if len(out) == 0 && want.MatrixHash != got.MatrixHash {
		out = append(out, fmt.Sprintf("matrix hash diverged (want %s, got %s)",
			want.MatrixHash, got.MatrixHash))
	}
	return out
}

// Package prefetch defines the prefetcher interface shared by every
// scheme in the study and implements the four baselines the paper
// compares against: stride (Fu/Patel + Jouppi), GHB G/DC and GHB PC/DC
// (Nesbit & Smith, HPCA'04), and spatial memory streaming (Somogyi et
// al., ISCA'06). The paper's own CBWS prefetcher lives in internal/core
// and plugs into the same interface; the CBWS+SMS integration is the
// Composite type.
//
// All prefetchers observe the demand access stream at commit order (the
// same vantage point as the paper's hardware) and emit candidate line
// addresses through an IssueFunc; the cache hierarchy decides whether a
// candidate actually allocates a fill.
package prefetch

import (
	"cbws/internal/mem"
)

// Access is one demand access as presented to a prefetcher for training.
type Access struct {
	PC    uint64
	Addr  mem.Addr
	Line  mem.LineAddr
	Write bool
	HitL1 bool
	HitL2 bool // valid only when !HitL1
	// PfHit marks the first demand use of a prefetched line (either a
	// completed or an in-flight prefetch). Prefetchers that train on
	// misses also train on these so that a working prefetch stream
	// keeps advancing instead of silencing its own training input.
	PfHit bool
}

// Miss reports whether the access missed the whole hierarchy.
//
//cbws:hotpath
func (a Access) Miss() bool { return !a.HitL1 && !a.HitL2 }

// IssueFunc receives candidate prefetch line addresses.
type IssueFunc func(mem.LineAddr)

// Prefetcher is a hardware prefetching scheme.
type Prefetcher interface {
	// Name identifies the scheme in reports ("sms", "cbws+sms", ...).
	Name() string
	// OnAccess trains on one demand access and may issue prefetches.
	OnAccess(a Access, issue IssueFunc)
	// OnBlockBegin observes a BLOCK_BEGIN marker.
	OnBlockBegin(id int)
	// OnBlockEnd observes a BLOCK_END marker and may issue prefetches.
	OnBlockEnd(id int, issue IssueFunc)
	// StorageBits returns the scheme's hardware budget in bits, for
	// the Table III comparison.
	StorageBits() uint64
	// Reset returns the prefetcher to power-on state.
	Reset()
}

// EvictionObserver is implemented by prefetchers that track cache
// evictions — SMS ends a spatial-region generation when one of the
// region's lines leaves the cache (Somogyi et al., Section 3). The
// simulator wires L1 evictions to this interface when the active
// prefetcher implements it.
type EvictionObserver interface {
	OnCacheEvict(l mem.LineAddr)
}

// NoBlocks provides no-op block handlers for schemes that have no notion
// of code blocks (every baseline in the paper's Section III).
type NoBlocks struct{}

// OnBlockBegin implements Prefetcher.
func (NoBlocks) OnBlockBegin(int) {}

// OnBlockEnd implements Prefetcher.
func (NoBlocks) OnBlockEnd(int, IssueFunc) {}

// None is the no-prefetching baseline.
type None struct{ NoBlocks }

// NewNone returns the no-prefetch scheme.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (*None) Name() string { return "none" }

// OnAccess implements Prefetcher (no training, no prefetches).
func (*None) OnAccess(Access, IssueFunc) {}

// StorageBits implements Prefetcher.
func (*None) StorageBits() uint64 { return 0 }

// Reset implements Prefetcher.
func (*None) Reset() {}

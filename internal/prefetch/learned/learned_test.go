package learned

import (
	"testing"

	"cbws/internal/check"
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// skipIfChecksEnabled guards the zero-allocation pins: they assert a
// property of the production build, which the cbwscheck diagnostic
// build deliberately trades for invariant checking.
func skipIfChecksEnabled(t *testing.T) {
	t.Helper()
	if check.Enabled {
		t.Skip("invariant checks enabled; zero-alloc pins apply to the production build")
	}
}

func missAt(pc uint64, line mem.LineAddr) prefetch.Access {
	return prefetch.Access{PC: pc, Addr: line.Byte(), Line: line}
}

func TestPythiaConfigDefaults(t *testing.T) {
	p := NewPythia(PythiaConfig{})
	c := p.Config()
	d := DefaultPythiaConfig()
	if len(c.Actions) != len(d.Actions) || c.Feature1Entries != 4096 || c.Feature2Entries != 1024 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.EQSize != 64 || c.DeltaHistory != 4 || c.QBits != 16 || c.TimelyAge != 8 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	// Table sizes round up to powers of two; EpsilonShift clamps.
	c2 := NewPythia(PythiaConfig{Feature1Entries: 100, Feature2Entries: 33, EpsilonShift: 40}).Config()
	if c2.Feature1Entries != 128 || c2.Feature2Entries != 64 {
		t.Errorf("pow2 rounding: got %d/%d", c2.Feature1Entries, c2.Feature2Entries)
	}
	if c2.EpsilonShift != 31 {
		t.Errorf("EpsilonShift clamp: got %d", c2.EpsilonShift)
	}
}

func TestPythiaName(t *testing.T) {
	if got := NewPythia(PythiaConfig{}).Name(); got != "pythia" {
		t.Errorf("Name = %q", got)
	}
}

// A steady sequential miss stream must teach the agent to leave the
// no-prefetch action: queued no-prefetch decisions watch their page
// miss again and again, driving Q(no-prefetch) down until a forward
// offset wins the argmax, after which issued prefetches are rewarded
// as accurate.
func TestPythiaLearnsSequentialStream(t *testing.T) {
	check.Enabled = true
	defer func() { check.Enabled = false }()
	p := NewPythia(PythiaConfig{})
	var issued []mem.LineAddr
	sink := func(l mem.LineAddr) { issued = append(issued, l) }
	for i := 0; i < 5000; i++ {
		p.OnAccess(missAt(0x401000, mem.LineAddr(1<<20+uint64(i))), sink)
	}
	if p.Stats.Triggers != 5000 {
		t.Fatalf("Triggers = %d, want 5000", p.Stats.Triggers)
	}
	if p.Stats.Issued == 0 || len(issued) == 0 {
		t.Fatal("sequential stream never escaped the no-prefetch action")
	}
	if p.Stats.AccurateTimely+p.Stats.AccurateLate == 0 {
		t.Error("no issued prefetch was ever rewarded accurate")
	}
	if p.Stats.NoPrefBad == 0 {
		t.Error("no-prefetch decisions on a missing stream were never punished")
	}
	if p.Stats.QUpdates == 0 {
		t.Error("no Q-updates applied")
	}
	classes := p.Stats.AccurateTimely + p.Stats.AccurateLate + p.Stats.Inaccurate +
		p.Stats.NoPrefGood + p.Stats.NoPrefBad
	if classes < p.Stats.QUpdates {
		t.Errorf("reward classes %d < evictions %d: an entry retired unclassified", classes, p.Stats.QUpdates)
	}
}

// Issued prefetches must stay within the trigger's 4KB page.
func TestPythiaStaysInPage(t *testing.T) {
	p := NewPythia(PythiaConfig{})
	var trigger mem.LineAddr
	bad := 0
	sink := func(l mem.LineAddr) {
		if uint64(l)>>pageLineShift != uint64(trigger)>>pageLineShift {
			bad++
		}
	}
	// A stride-3 miss stream crossing many pages.
	for i := 0; i < 4000; i++ {
		trigger = mem.LineAddr(1<<18 + uint64(i*3))
		p.OnAccess(missAt(0x400A00, trigger), sink)
	}
	if bad != 0 {
		t.Errorf("%d prefetches crossed their trigger page", bad)
	}
	if p.Stats.Issued == 0 {
		t.Error("stride stream issued nothing")
	}
}

// The agent is bit-deterministic: identical streams produce identical
// issue sequences and statistics, and Reset restores power-on state.
func TestPythiaDeterministicAndResets(t *testing.T) {
	run := func(p *Pythia) ([]mem.LineAddr, PythiaStats) {
		var out []mem.LineAddr
		sink := func(l mem.LineAddr) { out = append(out, l) }
		// Mixed pattern: two PCs, stride 2 and a page-local walk.
		for i := 0; i < 3000; i++ {
			p.OnAccess(missAt(0x400100, mem.LineAddr(1<<22+uint64(i*2))), sink)
			p.OnAccess(missAt(0x400200, mem.LineAddr(1<<24+uint64(i%64))), sink)
		}
		return out, p.Stats
	}
	a := NewPythia(PythiaConfig{})
	outA, statsA := run(a)
	b := NewPythia(PythiaConfig{})
	outB, statsB := run(b)
	if statsA != statsB {
		t.Fatalf("stats diverge across identical runs: %+v vs %+v", statsA, statsB)
	}
	if len(outA) != len(outB) {
		t.Fatalf("issue streams diverge: %d vs %d lines", len(outA), len(outB))
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("issue %d diverges: %#x vs %#x", i, outA[i], outB[i])
		}
	}
	a.Reset()
	outR, statsR := run(a)
	if statsR != statsA || len(outR) != len(outA) {
		t.Fatal("Reset did not restore power-on state")
	}
}

func TestPythiaStorageBits(t *testing.T) {
	p := NewPythia(PythiaConfig{})
	// Q-tables: (4096+1024) rows × 16 actions × 16 bits; EQ: 64 ×
	// (48 line tag + 12+10 row indexes + 4 action + 8 age/flags);
	// delta history: 4 × 8.
	want := uint64(5120*16*16 + 64*(48+22+4+8) + 4*8)
	if got := p.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
}

func TestPythiaOnAccessAllocFree(t *testing.T) {
	skipIfChecksEnabled(t)
	p := NewPythia(PythiaConfig{})
	drop := func(mem.LineAddr) {}
	i := 0
	iter := func() {
		p.OnAccess(missAt(0x401000, mem.LineAddr(1<<20+uint64(i))), drop)
		i++
	}
	for k := 0; k < 2000; k++ {
		iter() // warm: fill the EQ, train the tables
	}
	if avg := testing.AllocsPerRun(200, iter); avg != 0 {
		t.Errorf("warm OnAccess allocates %.1f objects, want 0", avg)
	}
}

func TestGazeConfigDefaults(t *testing.T) {
	g := NewGaze(GazeConfig{})
	c := g.Config()
	if c.RegionBytes != 4096 || c.ActiveEntries != 64 || c.PatternEntries != 512 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if c.OrderLines != 8 || c.ConfMax != 3 || c.ConfThreshold != 2 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if got := NewGaze(GazeConfig{OrderLines: 99}).Config().OrderLines; got != gazeMaxOrder {
		t.Errorf("OrderLines clamp: got %d", got)
	}
	if got := NewGaze(GazeConfig{PatternEntries: 100}).Config().PatternEntries; got != 128 {
		t.Errorf("pow2 rounding: got %d", got)
	}
}

func TestGazeName(t *testing.T) {
	if got := NewGaze(GazeConfig{}).Name(); got != "gaze" {
		t.Errorf("Name = %q", got)
	}
}

// trainGaze drives one region generation (offsets touched in order,
// all misses, same PC) and commits it via an eviction of its first
// line.
func trainGaze(g *Gaze, pc uint64, region uint64, offs []int16, sink prefetch.IssueFunc) {
	base := mem.LineAddr(region << 6) // default 64-line regions
	for _, o := range offs {
		g.OnAccess(missAt(pc, base.Add(int64(o))), sink)
	}
	g.OnCacheEvict(base.Add(int64(offs[0])))
}

// After two confirming generations the trigger pair replays the
// pattern: ordered lines first (minus the two trigger offsets), then
// nothing else because every touched line is in the order list.
func TestGazeLearnsAndReplays(t *testing.T) {
	check.Enabled = true
	defer func() { check.Enabled = false }()
	g := NewGaze(GazeConfig{})
	drop := func(mem.LineAddr) {}
	offs := []int16{0, 3, 5, 9}
	trainGaze(g, 0x400500, 100, offs, drop) // learn: conf=1
	trainGaze(g, 0x400500, 200, offs, drop) // confirm: conf=2
	if g.Stats.PatternsLearned != 1 || g.Stats.PatternsConfirmed != 1 {
		t.Fatalf("training stats: %+v", g.Stats)
	}

	var issued []mem.LineAddr
	sink := func(l mem.LineAddr) { issued = append(issued, l) }
	base := mem.LineAddr(uint64(300) << 6)
	g.OnAccess(missAt(0x400500, base.Add(0)), sink)
	g.OnAccess(missAt(0x400500, base.Add(3)), sink) // trigger pair complete
	if g.Stats.Replays != 1 {
		t.Fatalf("Replays = %d, want 1 (stats %+v)", g.Stats.Replays, g.Stats)
	}
	want := []mem.LineAddr{base.Add(5), base.Add(9)}
	if len(issued) != len(want) {
		t.Fatalf("issued %v, want %v", issued, want)
	}
	for i := range want {
		if issued[i] != want[i] {
			t.Fatalf("issued %v, want %v (temporal order violated)", issued, want)
		}
	}
	if g.Stats.LinesPrefetched != 2 {
		t.Errorf("LinesPrefetched = %d, want 2", g.Stats.LinesPrefetched)
	}
}

// Lines beyond the recorded order window replay from the footprint in
// ascending offset order, after the ordered prefix.
func TestGazeReplayFootprintTail(t *testing.T) {
	g := NewGaze(GazeConfig{OrderLines: 4})
	drop := func(mem.LineAddr) {}
	offs := []int16{7, 2, 9, 4, 30, 20} // order window keeps 7,2,9,4
	trainGaze(g, 0x400700, 100, offs, drop)
	trainGaze(g, 0x400700, 200, offs, drop)

	var issued []mem.LineAddr
	sink := func(l mem.LineAddr) { issued = append(issued, l) }
	base := mem.LineAddr(uint64(300) << 6)
	g.OnAccess(missAt(0x400700, base.Add(7)), sink)
	g.OnAccess(missAt(0x400700, base.Add(2)), sink)
	// Ordered: 9, 4 (skipping triggers 7, 2); then footprint tail
	// ascending: 20, 30.
	want := []mem.LineAddr{base.Add(9), base.Add(4), base.Add(20), base.Add(30)}
	if len(issued) != len(want) {
		t.Fatalf("issued %v, want %v", issued, want)
	}
	for i := range want {
		if issued[i] != want[i] {
			t.Fatalf("issued %v, want %v", issued, want)
		}
	}
}

// A generation that only ever touches one line trains nothing.
func TestGazeSingleLineDropped(t *testing.T) {
	g := NewGaze(GazeConfig{})
	drop := func(mem.LineAddr) {}
	base := mem.LineAddr(uint64(100) << 6)
	g.OnAccess(missAt(0x400600, base), drop)
	g.OnCacheEvict(base)
	if g.Stats.SingleLine != 1 || g.Stats.Generations != 0 {
		t.Errorf("stats: %+v", g.Stats)
	}
}

// A diverging footprint drains confidence; at zero the entry is
// replaced by the new pattern.
func TestGazeDivergenceReplaces(t *testing.T) {
	g := NewGaze(GazeConfig{})
	drop := func(mem.LineAddr) {}
	trainGaze(g, 0x400800, 100, []int16{0, 3, 5}, drop) // conf=1
	trainGaze(g, 0x400800, 200, []int16{0, 3, 8}, drop) // diverge: conf=0 → replace
	if g.Stats.PatternsDiverged != 1 {
		t.Fatalf("PatternsDiverged = %d (stats %+v)", g.Stats.PatternsDiverged, g.Stats)
	}
	if g.Stats.PatternsLearned != 2 {
		t.Errorf("PatternsLearned = %d, want 2 (replacement)", g.Stats.PatternsLearned)
	}
}

// Filling the active table commits the LRU generation, keeping the
// pattern table learning under capacity pressure.
func TestGazeActiveEvictionCommits(t *testing.T) {
	g := NewGaze(GazeConfig{ActiveEntries: 4})
	drop := func(mem.LineAddr) {}
	for r := uint64(1); r <= 5; r++ { // 5 regions through 4 slots
		base := mem.LineAddr(r << 6)
		g.OnAccess(missAt(0x400900, base.Add(0)), drop)
		g.OnAccess(missAt(0x400900, base.Add(1)), drop)
	}
	if g.Stats.Generations != 1 {
		t.Errorf("Generations = %d, want 1 (LRU commit)", g.Stats.Generations)
	}
}

func TestGazeDeterministicAndResets(t *testing.T) {
	run := func(g *Gaze) ([]mem.LineAddr, GazeStats) {
		var out []mem.LineAddr
		sink := func(l mem.LineAddr) { out = append(out, l) }
		for i := 0; i < 2000; i++ {
			r := uint64(1 + i%7)
			base := mem.LineAddr(r << 6)
			g.OnAccess(missAt(0x400500+uint64(i%3), base.Add(int64(i%5)*2)), sink)
			if i%11 == 0 {
				g.OnCacheEvict(base)
			}
		}
		return out, g.Stats
	}
	a := NewGaze(GazeConfig{})
	outA, statsA := run(a)
	b := NewGaze(GazeConfig{})
	outB, statsB := run(b)
	if statsA != statsB || len(outA) != len(outB) {
		t.Fatalf("diverged: %+v vs %+v, %d vs %d lines", statsA, statsB, len(outA), len(outB))
	}
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("issue %d diverges", i)
		}
	}
	a.Reset()
	outR, statsR := run(a)
	if statsR != statsA || len(outR) != len(outA) {
		t.Fatal("Reset did not restore power-on state")
	}
}

func TestGazeStorageBits(t *testing.T) {
	g := NewGaze(GazeConfig{})
	// Active: 64 × (36 tag + 32 pc + 2×6 offsets + 64 bitmap + 8×6
	// order + 16 lru); patterns: 512 × (32 tag + 64 bitmap + 48 order
	// + 2 conf).
	want := uint64(64*(36+32+12+64+48+16) + 512*(32+64+48+2))
	if got := g.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
}

func TestGazeOnAccessAllocFree(t *testing.T) {
	skipIfChecksEnabled(t)
	g := NewGaze(GazeConfig{})
	drop := func(mem.LineAddr) {}
	i := 0
	iter := func() {
		r := uint64(1 + i%9)
		base := mem.LineAddr(r << 6)
		g.OnAccess(missAt(0x400500, base.Add(int64(i%13))), drop)
		if i%17 == 0 {
			g.OnCacheEvict(base)
		}
		i++
	}
	for k := 0; k < 2000; k++ {
		iter() // warm: populate active and pattern tables
	}
	if avg := testing.AllocsPerRun(200, iter); avg != 0 {
		t.Errorf("warm OnAccess allocates %.1f objects, want 0", avg)
	}
}

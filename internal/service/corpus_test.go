package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"cbws/internal/harness"
	"cbws/internal/trace/corpus"
	"cbws/internal/workload"
)

// corpusDirFor packs the named workloads (at the test base instruction
// budget) into a fresh directory and opens it as a source.
func corpusDirFor(t *testing.T, names ...string) *harness.CorpusSource {
	t.Helper()
	dir := t.TempDir()
	for _, name := range names {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+".cbwc")
		if _, err := corpus.Pack(path, spec.Make(), testConfig().BaseSim.MaxInstructions, corpus.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	src, err := harness.OpenCorpusDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { src.Close() })
	return src
}

// TestCorpusBackedJob runs a job against a corpus-backed daemon and
// checks the three corpus contracts: the job key absorbs the corpus
// content address, the result is bit-identical to a live-generator run
// of the same cell, and hash-pinned submissions are honored or rejected
// with 409.
func TestCorpusBackedJob(t *testing.T) {
	src := corpusDirFor(t, "stencil-default")
	cfg := testConfig()
	cfg.Corpus = src
	svc, ts := newTestService(t, cfg)

	body := `{"workload":"stencil-default","prefetcher":"cbws"}`
	code, m, _ := postJob(t, ts.URL, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, m)
	}
	key := m["key"].(string)

	// The key must differ from the same submission keyed without a
	// corpus: the corpus bytes are part of the job identity.
	plain := JobSpec{Workload: "stencil-default", Prefetcher: "cbws", Config: cfg.BaseSim}
	if key == plain.Key(svc.CodeVersion()) {
		t.Fatal("corpus-backed job keyed identically to a generator-backed job")
	}
	hash, _ := src.Hash("stencil-default")
	withHash := plain
	withHash.WorkloadHash = hash
	if key != withHash.Key(svc.CodeVersion()) {
		t.Fatal("job key does not match the spec stamped with the corpus hash")
	}

	final := waitDone(t, ts.URL, key)
	if final["status"] != string(StatusDone) {
		t.Fatalf("job did not complete: %v", final)
	}

	// Replayed simulation must be bit-identical to the live generator.
	spec, _ := workload.ByName("stencil-default")
	f, _ := harness.FactoryByName("cbws")
	direct, err := harness.NewMatrix(harness.Options{Sim: cfg.BaseSim}).Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	view, err := svc.Submit(JobSpec{Workload: "stencil-default", Prefetcher: "cbws", Config: cfg.BaseSim})
	if err != nil || view.Status != StatusDone {
		t.Fatalf("resubmit: %v %v", view, err)
	}
	raw, ok := svc.Result(key)
	if !ok {
		t.Fatal("result missing")
	}
	var rec harness.RunRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Metrics != direct.Metrics {
		t.Fatalf("corpus-backed metrics diverge from live run:\n got %+v\nwant %+v", rec.Metrics, direct.Metrics)
	}

	// Pinning the exact corpus hash is accepted (and hits the cache).
	code, m, _ = postJob(t, ts.URL, fmt.Sprintf(
		`{"workload":"stencil-default","prefetcher":"cbws","workload_hash":%q}`, hash))
	if code != http.StatusOK || m["cached"] != true {
		t.Fatalf("hash-pinned resubmit: %d %v", code, m)
	}

	// A wrong pin is a 409, not a silent run over different bytes.
	wrong := strings.Repeat("0", 64)
	code, m, _ = postJob(t, ts.URL, fmt.Sprintf(
		`{"workload":"stencil-default","prefetcher":"cbws","workload_hash":%q}`, wrong))
	if code != http.StatusConflict {
		t.Fatalf("wrong hash pin: %d %v", code, m)
	}

	// Pinning a hash for a workload this daemon has no corpus for is
	// also a 409.
	code, m, _ = postJob(t, ts.URL, fmt.Sprintf(
		`{"workload":"429.mcf-ref","prefetcher":"cbws","workload_hash":%q}`, hash))
	if code != http.StatusConflict {
		t.Fatalf("pin without corpus: %d %v", code, m)
	}

	// A workload without a corpus still runs from its generator.
	code, m, _ = postJob(t, ts.URL, `{"workload":"429.mcf-ref","prefetcher":"none"}`)
	if code != http.StatusAccepted {
		t.Fatalf("generator-backed submit: %d %v", code, m)
	}
	if final := waitDone(t, ts.URL, m["key"].(string)); final["status"] != string(StatusDone) {
		t.Fatalf("generator-backed job: %v", final)
	}
}

// TestCorpusResultMatchesLiveService pins result equality end to end:
// the run record served by a corpus-backed daemon equals the record a
// corpus-less daemon computes for the same job, field for field.
func TestCorpusResultMatchesLiveService(t *testing.T) {
	cfgLive := testConfig()
	svcLive, tsLive := newTestService(t, cfgLive)

	src := corpusDirFor(t, "stencil-default")
	cfgCorp := testConfig()
	cfgCorp.Corpus = src
	svcCorp, tsCorp := newTestService(t, cfgCorp)

	body := `{"workload":"stencil-default","prefetcher":"sms"}`
	_, mLive, _ := postJob(t, tsLive.URL, body)
	_, mCorp, _ := postJob(t, tsCorp.URL, body)
	keyLive := mLive["key"].(string)
	keyCorp := mCorp["key"].(string)
	waitDone(t, tsLive.URL, keyLive)
	waitDone(t, tsCorp.URL, keyCorp)

	rawLive, _ := svcLive.Result(keyLive)
	rawCorp, _ := svcCorp.Result(keyCorp)
	if len(rawLive) == 0 || len(rawCorp) == 0 {
		t.Fatal("missing results")
	}
	// Identical run records (the wall-clock telemetry field aside).
	stripDur := func(s []byte) string {
		var out []string
		for _, line := range strings.Split(string(s), "\n") {
			if strings.Contains(line, "wall_time_sec") {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	if stripDur(rawLive) != stripDur(rawCorp) {
		t.Fatalf("corpus-backed record diverges from live record:\n--- live ---\n%s\n--- corpus ---\n%s",
			rawLive, rawCorp)
	}
}

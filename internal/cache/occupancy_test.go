package cache

import "testing"

func TestMSHROccupancy(t *testing.T) {
	c := mustCache(t, small()) // 2 MSHRs
	if got := c.MSHROccupancy(0); got != 0 {
		t.Fatalf("idle occupancy = %d, want 0", got)
	}
	c.Fill(1, 0, 300, false) // outstanding until 300
	c.Fill(2, 0, 100, false) // outstanding until 100
	if got := c.MSHROccupancy(50); got != 2 {
		t.Errorf("occupancy at 50 = %d, want 2", got)
	}
	if got := c.MSHROccupancy(200); got != 1 {
		t.Errorf("occupancy at 200 = %d, want 1 (one fill completed)", got)
	}
	if got := c.MSHROccupancy(400); got != 0 {
		t.Errorf("occupancy at 400 = %d, want 0 (all fills completed)", got)
	}
}

// TestMSHROccupancyDoesNotReap pins the observability contract: reading
// the occupancy must not reap completed entries, because the eager reap
// order inside mshrFree is part of the timing model — a probe that
// reaped would perturb later allocation decisions.
func TestMSHROccupancyDoesNotReap(t *testing.T) {
	a := mustCache(t, small())
	b := mustCache(t, small())
	for _, c := range []*Cache{a, b} {
		c.Fill(1, 0, 100, false)
		c.Fill(2, 0, 100, false)
	}
	// Observe a far in the future; b is left untouched.
	if got := a.MSHROccupancy(1_000_000); got != 0 {
		t.Fatalf("occupancy = %d, want 0", got)
	}
	// Both caches must now behave identically: the observed one must
	// still stall/complete fills exactly like the unobserved one.
	fa := a.Fill(3, 200, 100, false)
	fb := b.Fill(3, 200, 100, false)
	if fa != fb {
		t.Errorf("observed cache fills at %d, unobserved at %d — observation perturbed timing", fa, fb)
	}
}

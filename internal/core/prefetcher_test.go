package core

import (
	"testing"

	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// harness drives the prefetcher with synthetic block streams.
type driver struct {
	p      *Prefetcher
	issued []mem.LineAddr
}

func newDriver(cfg Config) *driver {
	return &driver{p: New(cfg)}
}

func (d *driver) issue(l mem.LineAddr) { d.issued = append(d.issued, l) }

// block runs one block instance over the given lines.
func (d *driver) block(id int, lines []mem.LineAddr) {
	d.p.OnBlockBegin(id)
	for _, l := range lines {
		d.p.OnAccess(prefetch.Access{Addr: l.Byte(), Line: l}, d.issue)
	}
	d.p.OnBlockEnd(id, d.issue)
}

// stridedBlock returns the line vector of iteration n for a loop whose
// working set is `lanes` lines spaced `gap` apart, advancing by `stride`
// lines per iteration.
func stridedBlock(n int, lanes, gap int, stride int64) []mem.LineAddr {
	base := mem.LineAddr(1 << 20).Add(stride * int64(n))
	out := make([]mem.LineAddr, lanes)
	for i := range out {
		out[i] = base.Add(int64(i * gap))
	}
	return out
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := New(Config{}).Config()
	if cfg.MaxVector != 16 || cfg.Steps != 4 || cfg.HistoryDepth != 3 ||
		cfg.TableEntries != 16 || cfg.HashBits != 12 || cfg.StrideBits != 16 || cfg.AddrBits != 32 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestStorageUnder1KB(t *testing.T) {
	p := New(Config{})
	bits := p.StorageBits()
	if bits >= 8192 {
		t.Errorf("storage = %d bits (%.2f KB), want < 1KB", bits, float64(bits)/8192)
	}
	// Figure 8 arithmetic: 512 + 2048 + 1024 + 144 + 4352 = 8080 bits.
	if bits != 8080 {
		t.Errorf("storage = %d bits, want 8080", bits)
	}
}

func TestConstantStridePrediction(t *testing.T) {
	d := newDriver(Config{})
	// Warm up: enough iterations to fill histories and the table.
	for n := 0; n < 10; n++ {
		d.block(0, stridedBlock(n, 4, 100, 7))
	}
	d.issued = nil
	d.block(0, stridedBlock(10, 4, 100, 7))
	if len(d.issued) == 0 {
		t.Fatal("no predictions for a constant-stride loop")
	}
	// Every predicted line must belong to a future iteration (steps
	// 1..4): base + 7*(11..14) + i*100.
	valid := map[mem.LineAddr]bool{}
	for step := 1; step <= 4; step++ {
		for _, l := range stridedBlock(10+step, 4, 100, 7) {
			valid[l] = true
		}
	}
	for _, l := range d.issued {
		if !valid[l] {
			t.Errorf("predicted %v, not in any future working set", l)
		}
	}
	// The complete next working set must be covered.
	next := map[mem.LineAddr]bool{}
	for _, l := range d.issued {
		next[l] = true
	}
	for _, l := range stridedBlock(11, 4, 100, 7) {
		if !next[l] {
			t.Errorf("next iteration line %v not predicted", l)
		}
	}
	if d.p.Stats.TableHits == 0 {
		t.Error("no table hits recorded")
	}
	if !d.p.Confident() {
		t.Error("prefetcher not confident after constant stride")
	}
}

func TestNoPredictionWithoutHistory(t *testing.T) {
	d := newDriver(Config{})
	// The very first blocks cannot predict (histories cold).
	for n := 0; n < 3; n++ {
		d.block(0, stridedBlock(n, 2, 10, 5))
	}
	if len(d.issued) != 0 {
		t.Errorf("predicted with cold history: %v", d.issued)
	}
}

func TestRandomPatternStaysSilent(t *testing.T) {
	d := newDriver(Config{})
	rng := uint64(12345)
	next := func() mem.LineAddr {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return mem.LineAddr(rng >> 24)
	}
	for n := 0; n < 50; n++ {
		d.block(0, []mem.LineAddr{next(), next(), next()})
	}
	// A random stream may occasionally collide in the 16-entry table;
	// the standalone prefetcher must stay near-silent.
	if len(d.issued) > 100 {
		t.Errorf("issued %d predictions on random blocks", len(d.issued))
	}
	if d.p.Stats.TableMisses == 0 {
		t.Error("expected table misses on random blocks")
	}
}

func TestZeroStrideSkipped(t *testing.T) {
	d := newDriver(Config{})
	// The same working set every iteration: differentials are zero and
	// nothing useful can be prefetched.
	lines := []mem.LineAddr{100, 200, 300}
	for n := 0; n < 10; n++ {
		d.block(0, lines)
	}
	if len(d.issued) != 0 {
		t.Errorf("issued %v for a stationary working set", d.issued)
	}
}

func TestOverflowBeyondMaxVector(t *testing.T) {
	d := newDriver(Config{MaxVector: 4})
	big := make([]mem.LineAddr, 10)
	for i := range big {
		big[i] = mem.LineAddr(1000 + i)
	}
	d.block(0, big)
	if d.p.Stats.Overflows == 0 {
		t.Error("overflow not recorded")
	}
	// Tracing is capped: predictions later never exceed MaxVector lines
	// per step.
	for n := 1; n < 10; n++ {
		shifted := make([]mem.LineAddr, 10)
		for i := range shifted {
			shifted[i] = big[i].Add(int64(20 * n))
		}
		d.block(0, shifted)
	}
	// Per block end at most Steps × MaxVector predictions, over the 9
	// post-warmup blocks.
	if len(d.issued) > 4*4*10 {
		t.Errorf("issued %d predictions with MaxVector=4", len(d.issued))
	}
	// Predictions may reach Steps=4 iterations beyond the last block
	// (n=9): lines up to 1009 + 20*13.
	for _, l := range d.issued {
		if l < 1000 || l > 1000+10+20*13 {
			t.Errorf("prediction %v outside the traced stream", l)
		}
	}
}

func TestDedupWithinBlock(t *testing.T) {
	d := newDriver(Config{})
	// Accessing the same line repeatedly inside a block must record it
	// once (Eq. 1: unique addresses).
	for n := 0; n < 6; n++ {
		base := mem.LineAddr(5000 + n*3)
		d.block(0, []mem.LineAddr{base, base, base.Add(1), base, base.Add(1)})
	}
	// The internal current CBWS is cleared at end; verify via the last
	// predecessor: it must have 2 unique lines.
	if got := len(d.p.last[0]); got != 2 {
		t.Errorf("last CBWS has %d lines, want 2", got)
	}
}

func TestBlockIDChangeResetsContext(t *testing.T) {
	d := newDriver(Config{})
	for n := 0; n < 10; n++ {
		d.block(0, stridedBlock(n, 3, 50, 9))
	}
	// Switch to a different static loop: the context clears, no stale
	// predictions from block 0's history.
	d.issued = nil
	d.block(1, stridedBlock(0, 3, 50, 9))
	if len(d.issued) != 0 {
		t.Errorf("stale context predicted after block switch: %v", d.issued)
	}
	if d.p.Confident() {
		t.Error("confidence survived a block switch")
	}
}

func TestAccessesOutsideBlocksIgnored(t *testing.T) {
	d := newDriver(Config{})
	d.p.OnAccess(prefetch.Access{Addr: 0x1000, Line: 64}, d.issue)
	if len(d.p.cur) != 0 {
		t.Error("access outside a block was traced")
	}
	// BlockEnd without matching Begin is a no-op.
	d.p.OnBlockEnd(0, d.issue)
	if len(d.issued) != 0 {
		t.Error("unmatched BlockEnd issued predictions")
	}
}

func TestEmptyBlocksDoNotPolluteHistory(t *testing.T) {
	d := newDriver(Config{})
	for n := 0; n < 10; n++ {
		d.block(0, stridedBlock(n, 3, 50, 9))
		// Interleave empty instances (e.g. the final header-test
		// iteration of a for-loop).
		d.block(0, nil)
	}
	d.issued = nil
	d.block(0, stridedBlock(10, 3, 50, 9))
	if len(d.issued) == 0 {
		t.Error("empty blocks destroyed the prediction context")
	}
}

func TestSaturatedStrideNotPredicted(t *testing.T) {
	d := newDriver(Config{})
	// Alternate between two far-apart regions so deltas overflow 16
	// bits; the prefetcher must not emit clamped garbage addresses.
	for n := 0; n < 20; n++ {
		base := mem.LineAddr(1 << 20)
		if n%2 == 1 {
			base = mem.LineAddr(1 << 30)
		}
		d.block(0, []mem.LineAddr{base.Add(int64(n)), base.Add(int64(n) + 10)})
	}
	for _, l := range d.issued {
		near20 := l >= 1<<20 && l < 1<<20+1<<10
		near30 := l >= 1<<30 && l < 1<<30+1<<10
		if !near20 && !near30 {
			t.Errorf("issued far-out line %v (clamped-stride garbage)", l)
		}
	}
}

func TestMultiStepPredictsFartherIterations(t *testing.T) {
	d := newDriver(Config{Steps: 4})
	for n := 0; n < 12; n++ {
		d.block(0, stridedBlock(n, 1, 0, 100))
	}
	d.issued = nil
	d.block(0, stridedBlock(12, 1, 0, 100))
	// With 4 steps, lines of iterations 13..16 should all appear.
	want := map[mem.LineAddr]bool{}
	for s := 1; s <= 4; s++ {
		want[stridedBlock(12+s, 1, 0, 100)[0]] = true
	}
	got := map[mem.LineAddr]bool{}
	for _, l := range d.issued {
		got[l] = true
	}
	for l := range want {
		if !got[l] {
			t.Errorf("multi-step line %v not predicted (issued %v)", l, d.issued)
		}
	}
}

func TestDivergentLengthsAlignToShorter(t *testing.T) {
	d := newDriver(Config{})
	// Alternate 3-line and 2-line instances (branch divergence); the
	// prefetcher must keep functioning and only predict within the
	// aligned prefix.
	for n := 0; n < 20; n++ {
		lanes := 3
		if n%2 == 1 {
			lanes = 2
		}
		d.block(0, stridedBlock(n, lanes, 40, 6))
	}
	// No panic, and any predictions stay near the stream.
	for _, l := range d.issued {
		if l < 1<<20 || l > 1<<20+1<<12 {
			t.Errorf("divergent blocks predicted far-out line %v", l)
		}
	}
}

func TestResetClearsEverything(t *testing.T) {
	d := newDriver(Config{})
	for n := 0; n < 10; n++ {
		d.block(0, stridedBlock(n, 4, 100, 7))
	}
	d.p.Reset()
	if d.p.Confident() || d.p.Stats.Blocks != 0 {
		t.Error("reset incomplete")
	}
	d.issued = nil
	d.block(0, stridedBlock(10, 4, 100, 7))
	if len(d.issued) != 0 {
		t.Errorf("predictions survived reset: %v", d.issued)
	}
}

func TestTableRandomReplacementKeepsWorking(t *testing.T) {
	// Far more distinct patterns than table entries: the table churns
	// but the prefetcher must remain functional and bounded.
	d := newDriver(Config{TableEntries: 4})
	for n := 0; n < 200; n++ {
		stride := int64(3 + n%13)
		d.block(0, stridedBlock(n, 2, 30, stride))
	}
	if d.p.Stats.Blocks != 200 {
		t.Errorf("blocks = %d", d.p.Stats.Blocks)
	}
}

func TestNameAndInterface(t *testing.T) {
	var _ prefetch.Prefetcher = New(Config{})
	if New(Config{}).Name() != "cbws" {
		t.Error("name")
	}
}

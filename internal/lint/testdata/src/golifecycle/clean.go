package golifecycle

import (
	"context"
	"sync"
)

func cleanWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func cleanAddBeforeLoop(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go work2(&wg)
	}
	wg.Wait()
}

func work2(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

func cleanDoneInBody(wg *sync.WaitGroup) {
	// The Add lives in the caller; Done in the goroutine body proves
	// membership in a waited group.
	go func() {
		defer wg.Done()
		work()
	}()
}

func cleanResultChannel() int {
	ch := make(chan int, 1)
	go func() { ch <- 42 }()
	return <-ch
}

func cleanCloseSignal() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

func cleanSelectReceive(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
		return false
	}
}

func cleanCtxLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

package atomicdiscipline

import (
	"expvar"
	"sync"
	"sync/atomic"
)

func cleanWrapper(c *counters) int64 {
	c.hits.Add(1)
	return c.hits.Load()
}

func cleanAddr(c *counters) *atomic.Int64 {
	return &c.hits
}

func cleanAtomicOnly(c *counters) int64 {
	atomic.AddInt64(&c.n, 1)
	return atomic.LoadInt64(&c.n)
}

var (
	active      atomic.Pointer[counters]
	publishOnce sync.Once
)

// cleanPublish is the expvar once+atomic-pointer publish pattern.
func cleanPublish(c *counters) {
	active.Store(c)
	publishOnce.Do(func() {
		expvar.Publish("fixture_vars", expvar.Func(func() any {
			return active.Load().hits.Load()
		}))
	})
}

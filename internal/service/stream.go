package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/harness"
	"cbws/internal/sim"
	"cbws/internal/trace"
	"cbws/internal/workload"
)

// Stream lifecycle states and wire views (see api/v1).
type (
	StreamState     = apiv1.StreamState
	StreamView      = apiv1.StreamView
	ChunkAck        = apiv1.ChunkAck
	StreamProbeView = apiv1.StreamProbeView
)

const (
	StreamOpen       = apiv1.StreamOpen
	StreamFinalizing = apiv1.StreamFinalizing
	StreamDone       = apiv1.StreamDone
	StreamFailed     = apiv1.StreamFailed
	StreamCanceled   = apiv1.StreamCanceled
)

// streamBatch is the event count handed to the simulator per
// ConsumeBatch call, matching the trace package's internal batch size
// so the streamed pipeline has the same batching as a live generator.
const streamBatch = 256

// Counter-commit thresholds: per-stream traffic deltas accumulate
// stream-locally (under the mutex already held for ingest) and are
// flushed to the tenant's shared atomic counters only when either
// threshold is reached, or when the stream's state changes. Net effect:
// the chunk hot path does zero cross-tenant atomic traffic per chunk in
// steady state.
const (
	counterCommitBytes  = 1 << 20
	counterCommitChunks = 64
)

// ingestReject is a chunk/open admission refusal, mapped to an HTTP
// status by the server layer. retryAfter > 0 marks the reject as
// retryable and is advertised in the Retry-After header.
type ingestReject struct {
	code       int // HTTP status
	retryAfter time.Duration
	msg        string
}

func (r *ingestReject) Error() string { return r.msg }

// Stream is one live streaming simulation: the incremental CBWT
// decoder, the bounded event ring between the HTTP ingest side and the
// simulator, and the lifecycle state machine.
//
// Locking: mu guards everything below it; the condition variable is
// signaled when the ring gains events or the lifecycle advances
// (close/abort), which is what the simulator side blocks on. Lock
// order is Stream.mu before tenant.mu; never the reverse.
type Stream struct {
	ID     string
	Tenant string
	Spec   JobSpec

	ten *tenant

	// progress mirrors the simulator's WithProgress hook (total
	// committed instructions), read lock-free by status/probe requests.
	progress atomic.Uint64

	mu   sync.Mutex
	cond sync.Cond
	dec  trace.ChunkDecoder
	sum  hash.Hash // SHA-256 of the raw stream bytes, for content addressing

	ring  []trace.Event //cbws:guardedby mu — bounded FIFO between ingest and simulation
	head  int           //cbws:guardedby mu
	count int           //cbws:guardedby mu

	state       StreamState //cbws:guardedby mu
	errMsg      string      //cbws:guardedby mu
	resultKey   string      //cbws:guardedby mu
	inputClosed bool        //cbws:guardedby mu — no more chunks: finalize when the ring drains
	aborted     bool        //cbws:guardedby mu — discard everything; no result
	budgetDone  bool        //cbws:guardedby mu — the simulator consumed its full instruction budget

	bytesIn  uint64    //cbws:guardedby mu
	chunks   uint64    //cbws:guardedby mu
	events   uint64    //cbws:guardedby mu
	lastRecv time.Time //cbws:guardedby mu

	// Uncommitted tenant-counter deltas (see counterCommitBytes).
	pendBytes  uint64 //cbws:guardedby mu
	pendChunks uint64 //cbws:guardedby mu
	pendEvents uint64 //cbws:guardedby mu

	// Latest probe sample, copied out of the simulator's reused Sample.
	sampleCount int             //cbws:guardedby mu
	lastSample  sim.SamplePoint //cbws:guardedby mu

	done chan struct{} // closed when the runner goroutine exits
}

func newStream(id string, spec JobSpec, tenantName string, ten *tenant, bufferEvents int, now time.Time) *Stream {
	st := &Stream{
		ID:       id,
		Tenant:   tenantName,
		Spec:     spec,
		ten:      ten,
		sum:      sha256.New(),
		ring:     make([]trace.Event, bufferEvents),
		state:    StreamOpen,
		lastRecv: now,
		done:     make(chan struct{}),
	}
	st.cond.L = &st.mu
	return st
}

// ringSink appends decoded batches to the stream's ring. It is only
// ever invoked from ChunkDecoder.Feed while st.mu is held, and ingest
// has already reserved enough space, so the append cannot overflow.
type ringSink struct{ st *Stream }

func (rs ringSink) ConsumeBatch(batch []trace.Event) bool {
	// ChunkDecoder.Feed only runs from ingest, which already holds
	// st.mu; the analyzer cannot see through the decoder callback.
	//lint:ignore cbws/guardedby ConsumeBatch is only reached from ingest with st.mu held
	rs.st.appendRingLocked(batch)
	return true
}

// appendRingLocked appends batch to the ring. Caller holds st.mu and
// has reserved space, so the append cannot overflow.
func (st *Stream) appendRingLocked(batch []trace.Event) {
	for _, e := range batch {
		st.ring[(st.head+st.count)%len(st.ring)] = e
		st.count++
	}
	st.events += uint64(len(batch))
	st.pendEvents += uint64(len(batch))
}

// take copies up to len(buf) ring events into buf, returning the count.
func (st *Stream) take(buf []trace.Event) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.aborted {
		return 0
	}
	n := st.count
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = st.ring[(st.head+i)%len(st.ring)]
	}
	st.head = (st.head + n) % len(st.ring)
	st.count -= n
	return n
}

// ingest admits and decodes one chunk. It is the streaming hot path:
// in steady state (header parsed, in-quota, space available) it
// performs no allocation — the decoder's fixed buffers, the
// preallocated ring, the running SHA-256, and stream-local counter
// deltas are all in place — which TestStreamIngestZeroAlloc pins.
func (st *Stream) ingest(chunk []byte, now time.Time) (ChunkAck, *ingestReject) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case StreamOpen, StreamFinalizing, StreamDone:
		if st.budgetDone {
			// The simulation already consumed its full instruction
			// budget; late bytes change nothing. Accept and discard so
			// a feeder running ahead of the simulator finishes cleanly
			// instead of spinning on a buffer nobody drains anymore.
			return st.ackLocked(), nil
		}
		if st.state != StreamOpen || st.inputClosed {
			return ChunkAck{}, &ingestReject{code: 409, msg: fmt.Sprintf("stream %s is closed to input", st.ID)}
		}
	default:
		return ChunkAck{}, &ingestReject{code: 409, msg: fmt.Sprintf("stream %s is %s: %s", st.ID, st.state, st.errMsg)}
	}

	// Space first: every encoded event is at least two bytes (kind +
	// one field byte), so a chunk can decode to at most len/2+1 events
	// (+1 for a pending partial event completed by this chunk). The
	// bound is conservative but allocation-free and branch-cheap.
	need := len(chunk)/2 + 1
	if need > len(st.ring) {
		return ChunkAck{}, &ingestReject{code: 413,
			msg: fmt.Sprintf("chunk of %d bytes can never fit the %d-event stream buffer; send smaller chunks", len(chunk), len(st.ring))}
	}
	if need > len(st.ring)-st.count {
		return ChunkAck{}, &ingestReject{code: 413, retryAfter: time.Second,
			msg: fmt.Sprintf("stream buffer full (%d/%d events); the simulator is behind, retry shortly", st.count, len(st.ring))}
	}

	// Rate admission: bytes are charged against the tenant's token
	// bucket. Oversized-for-the-bucket chunks can never be granted and
	// are a hard reject, not a retry loop.
	if float64(len(chunk)) > st.ten.bucket.burst {
		return ChunkAck{}, &ingestReject{code: 413,
			msg: fmt.Sprintf("chunk of %d bytes exceeds the tenant burst of %.0f bytes", len(chunk), st.ten.bucket.burst)}
	}
	if ok, wait := st.ten.admitBytes(now, len(chunk)); !ok {
		if wait < time.Second {
			wait = time.Second
		}
		return ChunkAck{}, &ingestReject{code: 429, retryAfter: wait,
			msg: fmt.Sprintf("tenant %q over byte rate; retry after %s", st.Tenant, wait.Round(time.Second))}
	}

	st.sum.Write(chunk)
	st.bytesIn += uint64(len(chunk))
	st.chunks++
	st.pendBytes += uint64(len(chunk))
	st.pendChunks++
	st.lastRecv = now
	if err := st.dec.Feed(chunk, ringSink{st}); err != nil {
		st.failLocked(fmt.Sprintf("malformed trace chunk: %v", err))
		return ChunkAck{}, &ingestReject{code: 400, msg: st.errMsg}
	}
	if st.pendBytes >= counterCommitBytes || st.pendChunks >= counterCommitChunks {
		st.commitPendingLocked()
	}
	st.cond.Broadcast()
	return st.ackLocked(), nil
}

// commitPendingLocked flushes the stream-local counter deltas to the
// tenant's shared atomics. Caller holds st.mu.
func (st *Stream) commitPendingLocked() {
	if st.pendBytes > 0 {
		st.ten.bytesIn.Add(st.pendBytes)
		st.pendBytes = 0
	}
	if st.pendChunks > 0 {
		st.ten.chunksIn.Add(st.pendChunks)
		st.pendChunks = 0
	}
	if st.pendEvents > 0 {
		st.ten.eventsIn.Add(st.pendEvents)
		st.pendEvents = 0
	}
}

func (st *Stream) ackLocked() ChunkAck {
	return ChunkAck{
		State:          st.state,
		BytesIn:        st.bytesIn,
		BufferedEvents: st.count,
		BufferCap:      len(st.ring),
	}
}

// failLocked moves an open stream to failed and tells the simulator
// side to discard. Caller holds st.mu.
func (st *Stream) failLocked(msg string) {
	st.state = StreamFailed
	st.errMsg = msg
	st.aborted = true
	st.commitPendingLocked()
	st.cond.Broadcast()
}

// closeInput declares end of input: the stream finalizes once the ring
// drains. A stream cut off mid-event is malformed (the byte sequence
// could never have decoded as a whole trace) and fails instead.
func (st *Stream) closeInput() (StreamView, *ingestReject) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch st.state {
	case StreamOpen:
	case StreamFinalizing, StreamDone:
		return st.viewLocked(), nil // idempotent
	default:
		return StreamView{}, &ingestReject{code: 409, msg: fmt.Sprintf("stream %s is %s: %s", st.ID, st.state, st.errMsg)}
	}
	if !st.dec.AtEventBoundary() {
		st.failLocked("stream closed mid-event: truncated trace")
		return StreamView{}, &ingestReject{code: 400, msg: st.errMsg}
	}
	st.inputClosed = true
	st.state = StreamFinalizing
	st.commitPendingLocked()
	st.cond.Broadcast()
	return st.viewLocked(), nil
}

// abort cancels the stream; reason lands in the view's error field.
func (st *Stream) abort(reason string) StreamView {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.state.Terminal() {
		return st.viewLocked()
	}
	st.state = StreamCanceled
	st.errMsg = reason
	st.aborted = true
	st.commitPendingLocked()
	st.cond.Broadcast()
	return st.viewLocked()
}

// View snapshots the stream for serialization.
func (st *Stream) View() StreamView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.viewLocked()
}

func (st *Stream) viewLocked() StreamView {
	return StreamView{
		ID:         st.ID,
		Tenant:     st.Tenant,
		Workload:   st.Spec.Workload,
		Prefetcher: st.Spec.Prefetcher,
		State:      st.state,
		Key:        st.resultKey,
		BytesIn:    st.bytesIn,
		Chunks:     st.chunks,
		Events:     st.events,
		Progress: Progress{
			Instructions:    st.progress.Load(),
			MaxInstructions: st.Spec.Config.MaxInstructions,
		},
		Error: st.errMsg,
	}
}

// Probe snapshots the live observability state.
func (st *Stream) Probe() StreamProbeView {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamProbeView{
		ID:    st.ID,
		State: st.state,
		Progress: Progress{
			Instructions:    st.progress.Load(),
			MaxInstructions: st.Spec.Config.MaxInstructions,
		},
		Samples: st.sampleCount,
		Latest:  st.lastSample,
	}
}

// Done returns a channel closed when the runner goroutine has exited
// (the stream is terminal and its result, if any, is cached).
func (st *Stream) Done() <-chan struct{} { return st.done }

// streamProbe tees simulator samples into the run-record series and the
// stream's live snapshot.
type streamProbe struct {
	ts *sim.TimeSeries
	st *Stream
}

func (p streamProbe) OnSample(s *sim.Sample) {
	p.ts.OnSample(s)
	st := p.st
	st.mu.Lock()
	st.sampleCount++
	st.lastSample = sim.SamplePoint{
		Instructions:    s.Instructions,
		Cycles:          s.Cycles,
		Interval:        s.Interval,
		ROBOccupancy:    s.ROBOccupancy,
		L1MSHROccupancy: s.L1MSHROccupancy,
		L2MSHROccupancy: s.L2MSHROccupancy,
		Final:           s.Final,
	}
	st.mu.Unlock()
}

// streamGen adapts the stream's event ring to trace.BatchGenerator: the
// generator the long-lived sim.RunContext pulls from. Between quanta it
// releases and re-acquires its scheduler slot, so concurrently active
// streams round-robin across the stream worker pool. While the ring is
// empty it holds no slot at all — an idle stream costs nothing.
type streamGen struct {
	st      *Stream
	sched   *ticketSched
	quantum int
	buf     [streamBatch]trace.Event
}

// Name returns the declared workload name: the simulation result (and
// therefore the run record) identifies the stream's workload exactly
// like a closed job's would.
func (g *streamGen) Name() string { return g.st.Spec.Workload }

// Generate implements trace.Generator.
func (g *streamGen) Generate(sink trace.Sink) { g.GenerateBatches(trace.AsBatchSink(sink)) }

// waitReadable blocks until the ring has events or the stream's input
// is over. It reports false when generation should end: aborted, or
// input closed with the ring drained.
func (g *streamGen) waitReadable() bool {
	st := g.st
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.count == 0 && !st.inputClosed && !st.aborted {
		st.cond.Wait()
	}
	return !st.aborted && st.count > 0
}

// GenerateBatches implements trace.BatchGenerator.
func (g *streamGen) GenerateBatches(sink trace.BatchSink) {
	for {
		if !g.waitReadable() {
			return
		}
		if !g.sched.acquire() {
			return // scheduler stopped: hard shutdown
		}
		for i := 0; i < g.quantum; i++ {
			n := g.st.take(g.buf[:])
			if n == 0 {
				break
			}
			if !sink.ConsumeBatch(g.buf[:n]) {
				// The simulator's instruction budget is exhausted;
				// whatever else arrives is irrelevant to the result.
				g.st.mu.Lock()
				g.st.budgetDone = true
				g.st.mu.Unlock()
				g.sched.release()
				return
			}
		}
		g.sched.release()
	}
}

// OpenStream validates and admits a new streaming simulation, spawns
// its runner, and returns its initial view. Admission rejections come
// back as *ingestReject (quota/rate → 429) for the server layer to map.
func (s *Service) OpenStream(tenantName string, spec JobSpec) (StreamView, error) {
	if s.draining.Load() {
		return StreamView{}, ErrDraining
	}
	if tenantName == "" {
		return StreamView{}, fmt.Errorf("missing tenant name")
	}
	now := s.cfg.Clock()
	s.streamsMu.Lock()
	open := 0
	for _, st := range s.streams {
		st.mu.Lock()
		if !st.state.Terminal() {
			open++
		}
		st.mu.Unlock()
	}
	if s.cfg.MaxStreams > 0 && open >= s.cfg.MaxStreams {
		s.streamsMu.Unlock()
		s.counters.streamsRejected.Add(1)
		return StreamView{}, &ingestReject{code: 429, retryAfter: s.cfg.RetryAfter,
			msg: fmt.Sprintf("daemon at its %d-stream capacity", s.cfg.MaxStreams)}
	}
	ten := s.tenants.get(tenantName, now)
	if !ten.admitOpen(s.cfg.TenantStreams) {
		s.streamsMu.Unlock()
		s.counters.streamsRejected.Add(1)
		return StreamView{}, &ingestReject{code: 429, retryAfter: s.cfg.RetryAfter,
			msg: fmt.Sprintf("tenant %q at its %d-stream quota", tenantName, s.cfg.TenantStreams)}
	}
	s.streamSeq++
	id := fmt.Sprintf("st-%08d", s.streamSeq)
	st := newStream(id, spec, tenantName, ten, s.cfg.StreamBufferEvents, now)
	s.streams[id] = st
	s.streamsMu.Unlock()

	s.counters.streamsOpened.Add(1)
	s.streamWG.Add(1)
	go s.runStream(st)
	return st.View(), nil
}

// Stream returns the stream table entry for id.
func (s *Service) Stream(id string) (*Stream, bool) {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	st, ok := s.streams[id]
	return st, ok
}

// openStreamCount counts non-terminal streams (the streams_open gauge).
func (s *Service) openStreamCount() int {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	n := 0
	for _, st := range s.streams {
		st.mu.Lock()
		if !st.state.Terminal() {
			n++
		}
		st.mu.Unlock()
	}
	return n
}

// runStream owns one stream's simulation end to end: it drives a
// long-lived sim.RunContext from the event ring, and on a clean end of
// input assembles the exact run record a closed job would produce and
// stores it in the content-addressed result cache.
func (s *Service) runStream(st *Stream) {
	defer s.streamWG.Done()
	defer close(st.done)
	defer st.ten.releaseStream()

	f, err := harness.ResolveFactory(st.Spec.Prefetcher)
	if err != nil {
		// Validated at open; only a roster change mid-flight gets here.
		s.finishStream(st, "", err.Error())
		return
	}
	interval := s.cfg.SampleInterval
	capacity := int(st.Spec.Config.MaxInstructions/interval) + 2
	ts := sim.NewTimeSeries(capacity)
	start := s.cfg.Clock()
	gen := &streamGen{st: st, sched: s.streamSched, quantum: s.cfg.StreamQuantum}
	res, err := sim.RunContext(context.Background(), st.Spec.Config, gen, f.New(),
		sim.WithProbe(streamProbe{ts: ts, st: st}),
		sim.WithSampleInterval(interval),
		sim.WithProgress(st.progress.Store))

	st.mu.Lock()
	aborted := st.aborted
	st.mu.Unlock()
	if aborted {
		// Canceled (client abort, idle timeout, decode failure, drain):
		// the state and error are already set; discard the partial run.
		s.finishStream(st, "", "")
		return
	}
	if err != nil {
		s.finishStream(st, "", err.Error())
		return
	}

	// Content address: a stream that consumed its full instruction
	// budget replayed exactly what the declared workload's generator
	// would have produced under the same budget (the daemon trusts the
	// tenant's declaration; see DESIGN.md §14), so the record is cached
	// under the closed job's key and the two serving paths converge. A
	// stream that ended early is a different piece of work and is
	// addressed by the SHA-256 of its own bytes instead. Corpus-backed
	// workloads never adopt the closed key: a closed job for them
	// replays the corpus, not the tenant's bytes.
	points := ts.Points()
	full := len(points) > 0 && points[len(points)-1].Instructions >= st.Spec.Config.MaxInstructions
	_, registered := workload.ByName(st.Spec.Workload)
	corpusBacked := false
	if s.cfg.Corpus != nil {
		if h, _ := s.cfg.Corpus.Hash(st.Spec.Workload); h != "" {
			corpusBacked = true
		}
	}
	spec := st.Spec
	if !full || !registered || corpusBacked {
		spec.WorkloadHash = func() string {
			st.mu.Lock()
			defer st.mu.Unlock()
			return hex.EncodeToString(st.sum.Sum(nil))
		}()
	}
	key := spec.Key(s.cfg.CodeVersion)

	rec := harness.NewRunRecord(st.Spec.Config, res, interval, points, s.cfg.Clock().Sub(start))
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		s.finishStream(st, "", fmt.Sprintf("encoding result: %v", err))
		return
	}
	data = append(data, '\n')
	meta := CacheMeta{Workload: st.Spec.Workload, Prefetcher: st.Spec.Prefetcher}
	// First write wins: if the closed-job path (or an earlier stream)
	// already cached this key, the existing bytes stay authoritative and
	// this stream's result is served from them — which is exactly the
	// byte-identity the streaming smoke asserts.
	if _, err := s.cache.PutOnce(key, meta, data); err != nil {
		s.finishStream(st, "", fmt.Sprintf("caching result: %v", err))
		return
	}
	s.finishStream(st, key, "")
}

// finishStream settles the stream's terminal state and counters. With
// key set the stream is done; with msg set it failed; with neither the
// state was already terminal (canceled/failed) and is left as is.
func (s *Service) finishStream(st *Stream, key, msg string) {
	st.mu.Lock()
	switch {
	case key != "":
		st.state = StreamDone
		st.resultKey = key
		st.ten.streamsDone.Add(1)
		s.counters.streamsDone.Add(1)
	case msg != "":
		st.state = StreamFailed
		st.errMsg = msg
		s.counters.streamsFailed.Add(1)
	case st.state == StreamFailed:
		s.counters.streamsFailed.Add(1)
	default:
		s.counters.streamsCanceled.Add(1)
	}
	st.commitPendingLocked()
	st.mu.Unlock()
}

// reapIdleStreams finalizes or cancels streams whose last chunk is
// older than the idle timeout: a stream whose trace already terminated
// cleanly is finalized as if the client had closed it (the work is
// complete; only the close call is missing), anything else is
// canceled. Called by the reaper goroutine and directly by tests.
func (s *Service) reapIdleStreams(now time.Time) {
	if s.cfg.StreamIdleTimeout <= 0 {
		return
	}
	s.streamsMu.Lock()
	var idle []*Stream
	for _, st := range s.streams {
		idle = append(idle, st)
	}
	s.streamsMu.Unlock()
	// Deterministic handling order (map iteration is randomized); IDs
	// are zero-padded sequence numbers, so this is creation order.
	sort.SliceStable(idle, func(i, j int) bool { return idle[i].ID < idle[j].ID })
	for _, st := range idle {
		st.mu.Lock()
		expired := st.state == StreamOpen && now.Sub(st.lastRecv) > s.cfg.StreamIdleTimeout
		terminated := st.dec.Terminated()
		st.mu.Unlock()
		if !expired {
			continue
		}
		if terminated {
			_, _ = st.closeInput()
		} else {
			st.abort("idle timeout: no chunk for " + s.cfg.StreamIdleTimeout.String())
		}
	}
}

// reaper periodically sweeps idle streams until drain.
func (s *Service) reaper() {
	defer s.wg.Done()
	period := s.cfg.StreamIdleTimeout / 4
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	if period > 5*time.Second {
		period = 5 * time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.reapIdleStreams(s.cfg.Clock())
		}
	}
}

// drainStreams applies finalize-or-cancel to every live stream at
// drain: cleanly-terminated streams finalize into normal cached
// results, everything else cancels. Returns once every runner exited
// or ctx expired.
func (s *Service) drainStreams(ctx context.Context) error {
	s.streamsMu.Lock()
	var live []*Stream
	for _, st := range s.streams {
		live = append(live, st)
	}
	s.streamsMu.Unlock()
	sort.SliceStable(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	for _, st := range live {
		st.mu.Lock()
		open := st.state == StreamOpen
		terminated := st.dec.Terminated()
		st.mu.Unlock()
		if !open {
			continue
		}
		if terminated {
			_, _ = st.closeInput()
		} else {
			st.abort("server draining")
		}
	}
	done := make(chan struct{})
	go func() {
		s.streamWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.streamSched.stop() // unstick anything waiting on a slot
		return ctx.Err()
	}
}

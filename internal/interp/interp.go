// Package interp executes mini-IR programs and emits the committed
// instruction stream (including block markers) as trace events — the
// role the instrumented binary plays in the paper's methodology.
//
// The machine is deterministic: registers hold int64, memory is a sparse
// byte-addressed store of 8-byte words defaulting to zero, and execution
// is bounded by a step budget so malformed kernels cannot hang a run.
// Loads return the stored values, so data-dependent access patterns
// (histogram bins, pointer chases, sparse indices) behave as they do in
// the real benchmarks.
package interp

import (
	"errors"
	"fmt"

	"cbws/internal/ir"
	"cbws/internal/mem"
	"cbws/internal/trace"
)

// ErrStepBudget reports that execution exceeded the configured budget.
var ErrStepBudget = errors.New("interp: step budget exhausted")

// PCBase is the synthetic code address of instruction 0; instruction i
// reports PC = PCBase + 4*i, giving every static memory instruction a
// distinct PC as a compiled binary would.
const PCBase = 0x400000

// Machine executes one program.
type Machine struct {
	prog    *ir.Program
	regs    []int64
	memory  map[mem.Addr]int64
	maxStep uint64

	// Steps counts executed IR instructions (markers included).
	Steps uint64
}

// New creates a machine for p with the given step budget (0 means 1e9).
func New(p *ir.Program, maxStep uint64) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if maxStep == 0 {
		maxStep = 1_000_000_000
	}
	return &Machine{
		prog:    p,
		regs:    make([]int64, p.NumRegs),
		memory:  make(map[mem.Addr]int64),
		maxStep: maxStep,
	}, nil
}

// SetWord initializes the 8-byte word at byte address addr.
func (m *Machine) SetWord(addr mem.Addr, val int64) { m.memory[addr] = val }

// Word reads back the 8-byte word at addr (0 if never written).
func (m *Machine) Word(addr mem.Addr) int64 { return m.memory[addr] }

// Run executes the program from instruction 0, emitting events into
// sink. Consecutive non-memory instructions are batched into Instr
// events.
func (m *Machine) Run(sink trace.Sink) error {
	return m.RunBatches(trace.AsBatchSink(sink))
}

// RunBatches executes the program, emitting events into sink through a
// reusable batch buffer. Execution stops early — without error and
// without panicking — once the sink reports it wants no more events.
func (m *Machine) RunBatches(sink trace.BatchSink) error {
	b := trace.NewBatcher(sink)
	pending := 0
	// flush delivers the pending Instr batch; emit flushes and then
	// pushes one event. Both report false once the sink has stopped.
	flush := func() bool {
		if pending > 0 {
			n := pending
			pending = 0
			return b.Event(trace.Event{Kind: trace.Instr, N: n})
		}
		return !b.Stopped()
	}
	emit := func(e trace.Event) bool {
		return flush() && b.Event(e)
	}
	pc := 0
	n := len(m.prog.Instrs)
	for pc >= 0 && pc < n {
		if m.Steps >= m.maxStep {
			flush()
			b.Flush()
			return fmt.Errorf("%w (%d steps)", ErrStepBudget, m.Steps)
		}
		m.Steps++
		in := m.prog.Instrs[pc]
		next := pc + 1
		switch in.Op {
		case ir.Nop:
			pending++
		case ir.Const:
			m.regs[in.Dst] = in.Imm
			pending++
		case ir.Mov:
			m.regs[in.Dst] = m.regs[in.A]
			pending++
		case ir.Add:
			m.regs[in.Dst] = m.regs[in.A] + m.regs[in.B]
			pending++
		case ir.AddI:
			m.regs[in.Dst] = m.regs[in.A] + in.Imm
			pending++
		case ir.Sub:
			m.regs[in.Dst] = m.regs[in.A] - m.regs[in.B]
			pending++
		case ir.Mul:
			m.regs[in.Dst] = m.regs[in.A] * m.regs[in.B]
			pending++
		case ir.MulI:
			m.regs[in.Dst] = m.regs[in.A] * in.Imm
			pending++
		case ir.Div:
			if b := m.regs[in.B]; b != 0 {
				m.regs[in.Dst] = m.regs[in.A] / b
			} else {
				m.regs[in.Dst] = 0
			}
			pending++
		case ir.Mod:
			if b := m.regs[in.B]; b != 0 {
				m.regs[in.Dst] = m.regs[in.A] % b
			} else {
				m.regs[in.Dst] = 0
			}
			pending++
		case ir.And:
			m.regs[in.Dst] = m.regs[in.A] & m.regs[in.B]
			pending++
		case ir.Shl:
			m.regs[in.Dst] = m.regs[in.A] << (uint(m.regs[in.B]) & 63)
			pending++
		case ir.Shr:
			m.regs[in.Dst] = int64(uint64(m.regs[in.A]) >> (uint(m.regs[in.B]) & 63))
			pending++
		case ir.Xor:
			m.regs[in.Dst] = m.regs[in.A] ^ m.regs[in.B]
			pending++
		case ir.CmpLT:
			if m.regs[in.A] < m.regs[in.B] {
				m.regs[in.Dst] = 1
			} else {
				m.regs[in.Dst] = 0
			}
			pending++
		case ir.CmpEQ:
			if m.regs[in.A] == m.regs[in.B] {
				m.regs[in.Dst] = 1
			} else {
				m.regs[in.Dst] = 0
			}
			pending++
		case ir.Jmp:
			pending++
			next = in.Target
		case ir.BrNZ:
			taken := m.regs[in.A] != 0
			if taken {
				next = in.Target
			}
			if !emit(trace.Event{Kind: trace.Branch, PC: PCBase + uint64(pc)*4, Taken: taken}) {
				return nil
			}
		case ir.BrZ:
			taken := m.regs[in.A] == 0
			if taken {
				next = in.Target
			}
			if !emit(trace.Event{Kind: trace.Branch, PC: PCBase + uint64(pc)*4, Taken: taken}) {
				return nil
			}
		case ir.Load:
			addr := mem.Addr(m.regs[in.A] + in.Imm)
			m.regs[in.Dst] = m.memory[addr]
			if !emit(trace.Event{Kind: trace.Load, PC: PCBase + uint64(pc)*4, Addr: addr}) {
				return nil
			}
		case ir.Store:
			addr := mem.Addr(m.regs[in.A] + in.Imm)
			m.memory[addr] = m.regs[in.B]
			if !emit(trace.Event{Kind: trace.Store, PC: PCBase + uint64(pc)*4, Addr: addr}) {
				return nil
			}
		case ir.Ret:
			flush()
			b.Flush()
			return nil
		case ir.BlockBegin:
			if !emit(trace.Event{Kind: trace.BlockBegin, Block: int(in.Imm)}) {
				return nil
			}
		case ir.BlockEnd:
			if !emit(trace.Event{Kind: trace.BlockEnd, Block: int(in.Imm)}) {
				return nil
			}
		default:
			flush()
			b.Flush()
			return fmt.Errorf("interp: unknown opcode %v at %d", in.Op, pc)
		}
		pc = next
	}
	flush()
	b.Flush()
	return nil
}

// Generator wraps a program (plus optional memory initialization) as a
// trace.Generator so IR kernels plug into the simulator like any other
// workload.
type Generator struct {
	Prog    *ir.Program
	MaxStep uint64
	// Init seeds machine memory before the run.
	Init func(set func(addr mem.Addr, val int64))
}

// Name implements trace.Generator.
func (g Generator) Name() string { return g.Prog.Name }

// Generate implements trace.Generator. Execution errors (budget, bad
// opcode) terminate the stream early; validation errors panic because
// they indicate a malformed kernel, a programming error.
func (g Generator) Generate(sink trace.Sink) {
	g.GenerateBatches(trace.AsBatchSink(sink))
}

// GenerateBatches implements trace.BatchGenerator.
func (g Generator) GenerateBatches(sink trace.BatchSink) {
	m, err := New(g.Prog, g.MaxStep)
	if err != nil {
		panic(err)
	}
	if g.Init != nil {
		g.Init(m.SetWord)
	}
	_ = m.RunBatches(sink)
}

package prefetch

import (
	"cbws/internal/mem"
)

// AMPMConfig parametrizes the access map pattern matching prefetcher
// (Ishii, Inaba & Hiraki, JILP 2011), which the paper's related-work
// section contrasts with CBWS: AMPM is not PC-based and only targets
// global spatial patterns, so inside loops it first identifies patterns
// within an iteration and only then across iterations. It is provided
// as an extension baseline beyond the paper's evaluated set.
type AMPMConfig struct {
	// ZoneBytes is the memory access map granularity (a power of two).
	ZoneBytes uint64
	// Zones is the number of concurrently tracked zones.
	Zones int
	// MaxStride bounds the pattern-matching stride in lines.
	MaxStride int
	// Degree bounds the prefetches issued per triggering access.
	Degree int
}

// DefaultAMPMConfig returns a configuration comparable to the other
// baselines: 4KB zones (64 lines), 64 zones, strides up to 16, degree 4.
func DefaultAMPMConfig() AMPMConfig {
	return AMPMConfig{ZoneBytes: 4 << 10, Zones: 64, MaxStride: 16, Degree: 4}
}

type ampmZone struct {
	zone mem.Region
	bits uint64 // accessed-line bitmap (ZoneBytes/64B <= 64 lines)
	lru  uint64
}

// AMPM is the access map pattern matching prefetcher.
type AMPM struct {
	NoBlocks
	cfg   AMPMConfig
	rc    mem.RegionConfig
	zones map[mem.Region]*ampmZone
	tick  uint64
}

// NewAMPM builds an AMPM prefetcher; zero-value fields of cfg fall back
// to defaults.
func NewAMPM(cfg AMPMConfig) *AMPM {
	def := DefaultAMPMConfig()
	if cfg.ZoneBytes == 0 {
		cfg.ZoneBytes = def.ZoneBytes
	}
	if cfg.Zones == 0 {
		cfg.Zones = def.Zones
	}
	if cfg.MaxStride == 0 {
		cfg.MaxStride = def.MaxStride
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	if cfg.ZoneBytes/mem.LineSize > 64 {
		cfg.ZoneBytes = 64 * mem.LineSize // bitmap is one uint64
	}
	a := &AMPM{cfg: cfg, rc: mem.RegionConfig{SizeBytes: cfg.ZoneBytes}}
	a.Reset()
	return a
}

// Name implements Prefetcher.
func (a *AMPM) Name() string { return "ampm" }

// Reset implements Prefetcher.
func (a *AMPM) Reset() {
	a.zones = make(map[mem.Region]*ampmZone, a.cfg.Zones)
	a.tick = 0
}

func (a *AMPM) zone(r mem.Region) *ampmZone {
	if z, ok := a.zones[r]; ok {
		return z
	}
	if len(a.zones) >= a.cfg.Zones {
		var victim mem.Region
		best := ^uint64(0)
		for k, z := range a.zones {
			if z.lru < best {
				best = z.lru
				victim = k
			}
		}
		delete(a.zones, victim)
	}
	z := &ampmZone{zone: r}
	a.zones[r] = z
	return z
}

// OnAccess sets the zone bit for the accessed line and pattern-matches:
// if lines (l−k) and (l−2k) were accessed, line (l+k) is a candidate,
// for every stride magnitude up to MaxStride in both directions.
func (a *AMPM) OnAccess(acc Access, issue IssueFunc) {
	a.tick++
	lines := int(a.cfg.ZoneBytes / mem.LineSize)
	r := a.rc.RegionOf(acc.Addr)
	off := a.rc.OffsetOf(acc.Addr)
	z := a.zone(r)
	z.lru = a.tick
	z.bits |= 1 << uint(off)

	// AMPM acts on the L2 access stream like the other baselines:
	// prefetches are triggered by misses only.
	if !acc.Miss() {
		return
	}
	issued := 0
	set := func(o int) bool { return o >= 0 && o < lines && z.bits&(1<<uint(o)) != 0 }
	for k := 1; k <= a.cfg.MaxStride && issued < a.cfg.Degree; k++ {
		for _, stride := range [2]int{k, -k} {
			if issued >= a.cfg.Degree {
				break
			}
			target := off + stride
			if target < 0 || target >= lines || set(target) {
				continue
			}
			if set(off-stride) && set(off-2*stride) {
				issue(a.rc.LineAt(r, target))
				z.bits |= 1 << uint(target)
				issued++
			}
		}
	}
}

// StorageBits estimates the budget: per zone a 36-bit tag plus the
// line bitmap.
func (a *AMPM) StorageBits() uint64 {
	lines := a.cfg.ZoneBytes / mem.LineSize
	return uint64(a.cfg.Zones) * (36 + lines)
}

package prefetch

import (
	"cbws/internal/mem"
)

// MarkovConfig parametrizes the Markov prefetcher (Joseph & Grunwald,
// ISCA 1997), which the paper's related-work section cites as the
// classic address-correlation scheme: a table of miss-address pairs
// predicts the successors that historically followed each miss. It is
// provided as an extension baseline beyond the paper's evaluated set.
type MarkovConfig struct {
	// TableEntries is the number of tracked predecessor addresses.
	TableEntries int
	// Successors is the number of successor slots per entry (the
	// fan-out of the Markov transition approximation).
	Successors int
}

// DefaultMarkovConfig returns a 1K-entry, 2-successor table.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{TableEntries: 1024, Successors: 2}
}

type markovEntry struct {
	succ []mem.LineAddr // MRU-first successor list
	lru  uint64
}

// Markov is the pair-correlation prefetcher.
type Markov struct {
	NoBlocks
	cfg   MarkovConfig
	table map[mem.LineAddr]*markovEntry
	last  mem.LineAddr
	has   bool
	tick  uint64
}

// NewMarkov builds a Markov prefetcher; zero-value fields of cfg fall
// back to defaults.
func NewMarkov(cfg MarkovConfig) *Markov {
	def := DefaultMarkovConfig()
	if cfg.TableEntries == 0 {
		cfg.TableEntries = def.TableEntries
	}
	if cfg.Successors == 0 {
		cfg.Successors = def.Successors
	}
	m := &Markov{cfg: cfg}
	m.Reset()
	return m
}

// Name implements Prefetcher.
func (m *Markov) Name() string { return "markov" }

// Reset implements Prefetcher.
func (m *Markov) Reset() {
	m.table = make(map[mem.LineAddr]*markovEntry, m.cfg.TableEntries)
	m.has = false
	m.tick = 0
}

func (m *Markov) entry(l mem.LineAddr) *markovEntry {
	if e, ok := m.table[l]; ok {
		return e
	}
	if len(m.table) >= m.cfg.TableEntries {
		var victim mem.LineAddr
		best := ^uint64(0)
		for k, e := range m.table {
			if e.lru < best {
				best = e.lru
				victim = k
			}
		}
		delete(m.table, victim)
	}
	e := &markovEntry{}
	m.table[l] = e
	return e
}

// recordTransition notes that miss `to` followed miss `from`,
// maintaining the successor list MRU-first.
func (m *Markov) recordTransition(from, to mem.LineAddr) {
	e := m.entry(from)
	e.lru = m.tick
	for i, s := range e.succ {
		if s == to {
			copy(e.succ[1:i+1], e.succ[:i])
			e.succ[0] = to
			return
		}
	}
	e.succ = append([]mem.LineAddr{to}, e.succ...)
	if len(e.succ) > m.cfg.Successors {
		e.succ = e.succ[:m.cfg.Successors]
	}
}

// OnAccess observes the global miss stream: each miss trains the
// transition out of the previous miss and prefetches the recorded
// successors of the current one.
func (m *Markov) OnAccess(a Access, issue IssueFunc) {
	if !a.Miss() {
		return
	}
	m.tick++
	if m.has {
		m.recordTransition(m.last, a.Line)
	}
	m.last = a.Line
	m.has = true
	if e, ok := m.table[a.Line]; ok {
		e.lru = m.tick
		for _, s := range e.succ {
			issue(s)
		}
	}
}

// StorageBits estimates the budget: per entry a 36-bit tag plus
// Successors 32-bit line addresses.
func (m *Markov) StorageBits() uint64 {
	return uint64(m.cfg.TableEntries) * uint64(36+32*m.cfg.Successors)
}

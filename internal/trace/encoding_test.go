package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"cbws/internal/mem"
)

func roundTrip(t *testing.T, name string, events []Event) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, name)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, e := range events {
		w.Consume(e)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: BlockBegin, Block: 12},
		{Kind: Load, PC: 0x401000, Addr: 0x12345678},
		{Kind: Store, PC: 0x401004, Addr: 0x12345640},
		{Kind: Instr, N: 42},
		{Kind: Load, PC: 0x401000, Addr: 0x12345679},
		{Kind: BlockEnd, Block: 12},
	}
	r := roundTrip(t, "rt", events)
	if r.Name() != "rt" {
		t.Errorf("Name = %q", r.Name())
	}
	var got []Event
	if err := r.Decode(SinkFunc(func(e Event) { got = append(got, e) })); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		want := events[i]
		if want.Kind == Instr && want.N == 0 {
			want.N = 1
		}
		if got[i] != want {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want)
		}
	}
}

func TestEncodeDecodeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var events []Event
	pc := uint64(0x400000)
	addr := uint64(1 << 30)
	for i := 0; i < 5000; i++ {
		switch rng.Intn(5) {
		case 0:
			events = append(events, Event{Kind: Instr, N: 1 + rng.Intn(100)})
		case 1, 2:
			pc += uint64(rng.Intn(64)) * 4
			addr += uint64(rng.Int63n(1<<20)) - 1<<19
			events = append(events, Event{Kind: Load, PC: pc, Addr: mem.Addr(addr)})
		case 3:
			events = append(events, Event{Kind: Store, PC: pc, Addr: mem.Addr(addr)})
		case 4:
			events = append(events, Event{Kind: BlockBegin, Block: rng.Intn(16)})
		}
		if rng.Intn(4) == 0 {
			pc += 4
			events = append(events, Event{Kind: Branch, PC: pc, Taken: rng.Intn(2) == 0})
		}
	}
	r := roundTrip(t, "random", events)
	i := 0
	err := r.Decode(SinkFunc(func(e Event) {
		if i < len(events) && e != events[i] {
			t.Fatalf("event %d mismatch: got %+v want %+v", i, e, events[i])
		}
		i++
	}))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if i != len(events) {
		t.Errorf("decoded %d of %d events", i, len(events))
	}
}

func TestReaderAsGenerator(t *testing.T) {
	events := []Event{
		{Kind: Load, PC: 4, Addr: 64},
		{Kind: Instr, N: 3},
	}
	r := roundTrip(t, "gen", events)
	tr := Capture(r)
	if tr.Name() != "gen" || len(tr.Events) != 2 {
		t.Fatalf("capture: name=%q events=%d", tr.Name(), len(tr.Events))
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("XXXX\x01\x00")))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v, want ErrBadTrace", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("CBWT\x7f\x00")))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v, want ErrBadTrace", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "trunc")
	if err != nil {
		t.Fatal(err)
	}
	w.Consume(Event{Kind: Load, PC: 1, Addr: 64})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop off the terminator and part of the last event.
	raw := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Decode(SinkFunc(func(Event) {})); !errors.Is(err, ErrBadTrace) {
		t.Errorf("Decode err = %v, want ErrBadTrace", err)
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 0x77 // replace EOF marker with a bogus kind
	raw = append(raw, 0xFF)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Decode(SinkFunc(func(Event) {})); !errors.Is(err, ErrBadTrace) {
		t.Errorf("Decode err = %v, want ErrBadTrace", err)
	}
}

func TestWriterRejectsUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	w.Consume(Event{Kind: Kind(200)})
	if err := w.Close(); err == nil {
		t.Error("expected Close to report the encoding error")
	}
}

func TestCompactEncoding(t *testing.T) {
	// Strided streams should delta-encode to a few bytes per event.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "stride")
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		w.Consume(Event{Kind: Load, PC: 0x400100, Addr: mem.Addr(1<<30 + i*64)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if perEvent := float64(buf.Len()) / n; perEvent > 4.5 {
		t.Errorf("strided stream encodes to %.1f bytes/event, want <= 4.5", perEvent)
	}
}

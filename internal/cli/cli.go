// Package cli pins the exit-status convention every cbws command
// shares:
//
//	0  success
//	1  runtime failure (I/O errors, failed gates, lint findings)
//	2  usage errors (bad flags or arguments)
//
// Commands route terminal failures through Usagef and Errorf so the
// convention cannot drift per command. Exit and Stderr are variables so
// tests can observe the code and message instead of dying.
package cli

import (
	"fmt"
	"io"
	"os"
)

// The exit codes of the convention.
const (
	ExitOK    = 0
	ExitFail  = 1
	ExitUsage = 2
)

var (
	// Exit terminates the process; tests swap it to capture the code.
	Exit = os.Exit
	// Stderr receives the failure message; tests swap it to a buffer.
	Stderr io.Writer = os.Stderr
)

// Usagef reports a command-line usage error (bad flag or argument) as
// "cmd: message" and exits with ExitUsage.
func Usagef(cmd, format string, args ...any) {
	fmt.Fprintf(Stderr, cmd+": "+format+"\n", args...)
	Exit(ExitUsage)
}

// Errorf reports a runtime failure as "cmd: message" and exits with
// ExitFail.
func Errorf(cmd, format string, args ...any) {
	fmt.Fprintf(Stderr, cmd+": "+format+"\n", args...)
	Exit(ExitFail)
}

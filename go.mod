module cbws

go 1.22

package trace

import "testing"

// The batched pipeline's selling point is that delivering an event
// costs a buffer store, not an allocation: the Batcher owns one fixed
// buffer and the limiter forwards batches in place. Guard that with an
// allocation regression test — a slip here multiplies into millions of
// allocations per simulation.

type countBatchSink struct{ events uint64 }

func (c *countBatchSink) ConsumeBatch(batch []Event) bool {
	c.events += uint64(len(batch))
	return true
}

func TestBatcherSteadyStateAllocationFree(t *testing.T) {
	var cs countBatchSink
	b := NewBatcher(&cs)
	ev := Event{Kind: Load, PC: 0x40, Addr: 1 << 20}
	if avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 4*batchSize; i++ {
			b.Event(ev)
		}
		b.Flush()
	}); avg != 0 {
		t.Errorf("batcher delivery allocates %.1f objects per run, want 0", avg)
	}
}

func TestLimiterDeliveryAllocationFree(t *testing.T) {
	var cs countBatchSink
	lm := &limiter{max: 1 << 50, down: &cs}
	batch := make([]Event, batchSize)
	for i := range batch {
		batch[i] = Event{Kind: Instr, N: 3}
	}
	if avg := testing.AllocsPerRun(100, func() {
		lm.ConsumeBatch(batch)
	}); avg != 0 {
		t.Errorf("limiter forwarding allocates %.1f objects per run, want 0", avg)
	}
}

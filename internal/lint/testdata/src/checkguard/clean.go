package checkguard

import "cbws/internal/check"

func (t *table) grow(n int) {
	if check.Enabled {
		check.Assertf(n > 0, "grow by %d", n)
	}
	t.n += n
}

func (t *table) shrink(n int) {
	// check.Enabled as the leading conjunct also counts as a guard.
	if check.Enabled && n > t.n {
		check.Failf("shrink %d exceeds size %d", n, t.n)
	}
	t.n -= n
}

func (t *table) audit() {
	if check.Enabled {
		checkTable(t)
	}
}

package check

import (
	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// RefCBWSConfig mirrors core.Config (the CBWS prefetcher hardware
// parameters). Zero values are NOT defaulted here: the differential
// tests construct both sides from one explicit parameter set.
type RefCBWSConfig struct {
	MaxVector    int
	Steps        int
	HistoryDepth int
	TableEntries int
	HashBits     int
	StrideBits   int
	AddrBits     int
}

// RefCBWSStats mirrors core.Stats field for field.
type RefCBWSStats struct {
	Blocks         uint64
	Overflows      uint64
	TableHits      uint64
	TableMisses    uint64
	LinesPredicted uint64
}

// refTableEntry is one differential history table slot.
type refTableEntry struct {
	valid bool
	tag   uint16
	diff  []int32
}

// RefCBWS is the naive reference CBWS predictor: plain slices, fresh
// allocations per block, differentials recomputed from scratch at every
// BLOCK_END instead of extended incrementally on each access, no
// preallocated Reset and no *Into variants. The hash, tag fold, stride
// clamp and random-replacement sequence re-implement the paper's
// hardware spec (Section V / Figure 8) directly, so the issued prefetch
// stream and statistics must be bit-identical to core.Prefetcher
// configured with the same parameters.
type RefCBWS struct {
	cfg RefCBWSConfig

	inBlock  bool
	curBlock int

	cur  []mem.LineAddr
	last [][]mem.LineAddr // last[i] = CBWS of the (i+1)-th previous block

	hist      [][]uint16 // hist[i] = shift register, newest last
	histCount []int      // total enqueued per register, to gate until warm

	table []refTableEntry
	rng   uint32

	confident bool

	Stats RefCBWSStats
}

// refCBWSSeed is the deterministic xorshift seed shared with the
// production prefetcher (the MICRO 2014 date, see core.Prefetcher.Reset).
const refCBWSSeed = 0x20140612

// NewRefCBWS builds the reference predictor.
func NewRefCBWS(cfg RefCBWSConfig) *RefCBWS {
	p := &RefCBWS{cfg: cfg}
	p.Reset()
	return p
}

// Reset returns the predictor to power-on state, allocating everything
// fresh (deliberately: the reference has no preallocation discipline).
func (p *RefCBWS) Reset() {
	p.inBlock = false
	p.curBlock = -1
	p.cur = nil
	p.last = make([][]mem.LineAddr, p.cfg.Steps)
	p.hist = make([][]uint16, p.cfg.Steps)
	p.histCount = make([]int, p.cfg.Steps)
	for i := range p.hist {
		p.hist[i] = make([]uint16, p.cfg.HistoryDepth)
	}
	p.table = make([]refTableEntry, p.cfg.TableEntries)
	p.rng = refCBWSSeed
	p.confident = false
	p.Stats = RefCBWSStats{}
}

// Confident mirrors core.Prefetcher.Confident.
func (p *RefCBWS) Confident() bool { return p.confident }

// refInvalidStride marks a saturated stride, as in the production
// prefetcher: elements whose delta overflows StrideBits never predict.
const refInvalidStride int32 = 1<<31 - 1

func (p *RefCBWS) clamp(d int64) int32 {
	max := int64(1)<<(uint(p.cfg.StrideBits)-1) - 1
	min := -(int64(1) << (uint(p.cfg.StrideBits) - 1))
	if d > max || d < min {
		return refInvalidStride
	}
	return int32(d)
}

func (p *RefCBWS) storedLine(l mem.LineAddr) mem.LineAddr {
	if p.cfg.AddrBits >= 64 {
		return l
	}
	return l & mem.LineAddr(1<<uint(p.cfg.AddrBits)-1)
}

// hashDiff bit-selects a differential vector into HashBits bits
// (position-dependent rotation, length mixed in), per the production
// hash it cross-checks.
func (p *RefCBWS) hashDiff(d []int32) uint16 {
	hb := uint(p.cfg.HashBits)
	mask := uint32(1)<<hb - 1
	h := uint32(len(d)) * 0x9E5
	for i, s := range d {
		v := uint32(s) & mask
		rot := uint(i*5) % hb
		v = (v<<rot | v>>(hb-rot)) & mask
		h ^= v
	}
	return uint16(h & mask)
}

// foldTag xor-folds a history register into a 16-bit table tag.
func (p *RefCBWS) foldTag(reg []uint16) uint16 {
	var x uint64
	for _, v := range reg {
		x = x<<uint(p.cfg.HashBits) | uint64(v)
	}
	return uint16(x) ^ uint16(x>>16) ^ uint16(x>>32) ^ uint16(x>>48)
}

func (p *RefCBWS) xorshift() uint32 {
	x := p.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	p.rng = x
	return x
}

func (p *RefCBWS) tableLookup(tag uint16) *refTableEntry {
	for i := range p.table {
		if p.table[i].valid && p.table[i].tag == tag {
			return &p.table[i]
		}
	}
	return nil
}

func (p *RefCBWS) tableStore(tag uint16, diff []int32) {
	e := p.tableLookup(tag)
	if e == nil {
		for i := range p.table {
			if !p.table[i].valid {
				e = &p.table[i]
				break
			}
		}
	}
	if e == nil {
		e = &p.table[p.xorshift()%uint32(len(p.table))]
	}
	e.valid = true
	e.tag = tag
	e.diff = append([]int32(nil), diff...)
}

// OnBlockBegin mirrors the BLOCK_BEGIN flow: clear the current CBWS; a
// static block change clears the predecessors and histories too.
func (p *RefCBWS) OnBlockBegin(id int) {
	if id != p.curBlock {
		p.curBlock = id
		p.last = make([][]mem.LineAddr, p.cfg.Steps)
		for i := range p.hist {
			p.hist[i] = make([]uint16, p.cfg.HistoryDepth)
			p.histCount[i] = 0
		}
		p.confident = false
	}
	p.inBlock = true
	p.cur = nil
}

// OnAccess mirrors the memory-access flow: push the line into the
// current CBWS if new. Unlike the production predictor it maintains no
// incremental differentials — those are recomputed at BLOCK_END.
func (p *RefCBWS) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	if !p.inBlock {
		return
	}
	line := p.storedLine(a.Line)
	if len(p.cur) >= p.cfg.MaxVector {
		p.Stats.Overflows++
		return
	}
	for _, x := range p.cur {
		if x == line {
			return
		}
	}
	p.cur = append(p.cur, line)
}

// differential recomputes the clamped element-wise differential of the
// current CBWS against predecessor CBWS v (Eq. 2), truncated to the
// shorter vector — the from-scratch equivalent of the production
// predictor's incremental per-access construction.
func (p *RefCBWS) differential(v []mem.LineAddr) []int32 {
	if v == nil {
		return nil
	}
	n := len(p.cur)
	if len(v) < n {
		n = len(v)
	}
	var out []int32
	for i := 0; i < n; i++ {
		out = append(out, p.clamp(p.cur[i].Delta(v[i])))
	}
	return out
}

// OnBlockEnd mirrors the BLOCK_END flow: store differentials keyed by
// the pre-update histories, enqueue them, rotate predecessors, then
// predict from the post-update histories.
func (p *RefCBWS) OnBlockEnd(id int, issue prefetch.IssueFunc) {
	if !p.inBlock || id != p.curBlock {
		p.inBlock = false
		return
	}
	p.inBlock = false
	p.Stats.Blocks++

	// 1. Learn: history prefix → current differential, per step.
	for i := 0; i < p.cfg.Steps; i++ {
		diff := p.differential(p.last[i])
		if len(diff) > 0 {
			if p.histCount[i] >= p.cfg.HistoryDepth {
				p.tableStore(p.foldTag(p.hist[i]), diff)
			}
			reg := p.hist[i]
			copy(reg, reg[1:])
			reg[len(reg)-1] = p.hashDiff(diff)
			p.histCount[i]++
		}
	}

	// 2. Rotate predecessors: last[0] becomes the block that finished.
	p.last = append([][]mem.LineAddr{append([]mem.LineAddr(nil), p.cur...)},
		p.last[:p.cfg.Steps-1]...)

	// 3. Predict from the post-update histories.
	p.confident = false
	cur := p.last[0]
	for i := 0; i < p.cfg.Steps; i++ {
		if p.histCount[i] < p.cfg.HistoryDepth {
			continue
		}
		e := p.tableLookup(p.foldTag(p.hist[i]))
		if e == nil {
			p.Stats.TableMisses++
			continue
		}
		p.Stats.TableHits++
		p.confident = true
		n := len(e.diff)
		if len(cur) < n {
			n = len(cur)
		}
		for j := 0; j < n; j++ {
			if e.diff[j] == 0 || e.diff[j] == refInvalidStride {
				continue
			}
			issue(cur[j].Add(int64(e.diff[j])))
			p.Stats.LinesPredicted++
		}
	}
}

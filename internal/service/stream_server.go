package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/harness"
	"cbws/internal/sim"
)

// OpenStreamRequest is the POST /v1/streams body (wire type, api/v1).
type OpenStreamRequest = apiv1.OpenStreamRequest

// maxChunkBodyBytes bounds one chunk upload. It is deliberately above
// any sane tenant burst: a chunk the admission layer can never grant is
// rejected with a proper 413 + explanation instead of a transport
// error.
const maxChunkBodyBytes = 16 << 20

// chunkBufPool recycles chunk request-body buffers so sustained chunk
// ingest does not allocate a fresh buffer per HTTP request. (The
// in-memory ingest path itself is allocation-free; see
// TestStreamIngestZeroAlloc.)
var chunkBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeReject maps an admission refusal to its HTTP response. A
// positive retryAfter marks the reject retryable via the Retry-After
// header — on 413 the header's presence is the wire signal that
// distinguishes "buffer momentarily full" from "can never fit".
func writeReject(w http.ResponseWriter, rej *ingestReject) {
	if rej.retryAfter > 0 {
		secs := int(rej.retryAfter.Seconds() + 0.5)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeError(w, rej.code, "%s", rej.msg)
}

// parseStreamSpec validates an open-stream request into the JobSpec the
// finalized stream will be recorded under. Unlike closed-job specs the
// workload need not be a registered generator — the trace arrives over
// the wire — so only the simulated system is validated here.
func (s *Service) parseStreamSpec(req OpenStreamRequest) (JobSpec, error) {
	if req.Workload == "" {
		return JobSpec{}, fmt.Errorf("missing workload name")
	}
	if _, err := harness.ResolveFactory(req.Prefetcher); err != nil {
		return JobSpec{}, err
	}
	spec := JobSpec{Workload: req.Workload, Prefetcher: req.Prefetcher, Config: s.cfg.BaseSim}
	if len(req.Config) > 0 {
		cfg, err := sim.ReadConfig(bytes.NewReader(req.Config), s.cfg.BaseSim)
		if err != nil {
			return JobSpec{}, err
		}
		spec.Config = cfg
	}
	if err := spec.Config.Validate(); err != nil {
		return JobSpec{}, err
	}
	if spec.Config.MaxInstructions == 0 {
		return JobSpec{}, fmt.Errorf("config.max_instructions must be positive")
	}
	return spec, nil
}

func (s *Service) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req OpenStreamRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing request: %v", err)
		return
	}
	spec, err := s.parseStreamSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view, err := s.OpenStream(req.Tenant, spec)
	var rej *ingestReject
	switch {
	case errors.As(err, &rej):
		writeReject(w, rej)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, view)
}

func (s *Service) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	buf := chunkBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer chunkBufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxChunkBodyBytes)); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"chunk exceeds the %d-byte upload bound; send smaller chunks", maxChunkBodyBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "reading chunk: %v", err)
		return
	}
	ack, rej := st.ingest(buf.Bytes(), s.cfg.Clock())
	if rej != nil {
		writeReject(w, rej)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

func (s *Service) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st.View())
}

func (s *Service) handleStreamProbe(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st.Probe())
}

func (s *Service) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	view, rej := st.closeInput()
	if rej != nil {
		writeReject(w, rej)
		return
	}
	// Give the finalizing run a brief head start so the common
	// close-after-last-chunk call usually returns the terminal view
	// (with the result key) directly instead of forcing a status poll.
	select {
	case <-st.Done():
		view = st.View()
	case <-time.After(2 * time.Second):
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleStreamAbort(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Stream(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st.abort("canceled by client"))
}

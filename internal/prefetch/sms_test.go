package prefetch

import (
	"sort"
	"testing"

	"cbws/internal/mem"
)

// smsAccess builds an L1 access (SMS trains on all L1 activity).
func smsAccess(pc uint64, addr mem.Addr) Access {
	return Access{PC: pc, Addr: addr, Line: mem.LineOf(addr)}
}

// touchRegion walks the given line offsets of the 2KB region at base.
func touchRegion(p *SMS, c *collect, pc uint64, base mem.Addr, offsets []int) {
	for _, off := range offsets {
		p.OnAccess(smsAccess(pc, base+mem.Addr(off*mem.LineSize)), c.issue)
	}
}

func TestSMSLearnsAndPredictsFootprint(t *testing.T) {
	p := NewSMS(SMSConfig{})
	c := &collect{}
	const regionA = mem.Addr(0x10000) // 2KB-aligned
	const regionB = mem.Addr(0x20000)

	// Generation 1 in region A: touch offsets 0, 3, 7, 9.
	touchRegion(p, c, 0x40, regionA, []int{0, 3, 7, 9})
	// End the generation via eviction of one of its lines.
	p.OnCacheEvict(mem.LineOf(regionA))
	if len(c.lines) != 0 {
		t.Fatalf("prefetches before any PHT training: %v", c.lines)
	}

	// New generation in region B with the same trigger (PC, offset 0):
	// the learned footprint must be prefetched.
	p.OnAccess(smsAccess(0x40, regionB), c.issue)
	want := []mem.LineAddr{
		mem.LineOf(regionB + 3*mem.LineSize),
		mem.LineOf(regionB + 7*mem.LineSize),
		mem.LineOf(regionB + 9*mem.LineSize),
	}
	got := append([]mem.LineAddr{}, c.lines...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(want) {
		t.Fatalf("issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("issued %v, want %v", got, want)
		}
	}
}

func TestSMSTriggerMismatchNoPrediction(t *testing.T) {
	p := NewSMS(SMSConfig{})
	c := &collect{}
	regionA := mem.Addr(0x10000)
	touchRegion(p, c, 0x40, regionA, []int{0, 3, 7})
	p.OnCacheEvict(mem.LineOf(regionA))

	// Different trigger PC: no prediction.
	p.OnAccess(smsAccess(0x99, mem.Addr(0x20000)), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("predicted for wrong trigger PC: %v", c.lines)
	}
	// Different trigger offset: no prediction.
	p.OnAccess(smsAccess(0x40, mem.Addr(0x30000)+5*mem.LineSize), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("predicted for wrong trigger offset: %v", c.lines)
	}
}

func TestSMSSingleLineRegionNotCommitted(t *testing.T) {
	p := NewSMS(SMSConfig{})
	c := &collect{}
	// Only one line touched: the region stays in the filter table and
	// produces no PHT pattern.
	p.OnAccess(smsAccess(0x40, mem.Addr(0x10000)), c.issue)
	p.OnCacheEvict(mem.LineOf(mem.Addr(0x10000)))
	p.OnAccess(smsAccess(0x40, mem.Addr(0x20000)), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("single-line region trained the PHT: %v", c.lines)
	}
}

func TestSMSRepeatedLineStaysInFilter(t *testing.T) {
	p := NewSMS(SMSConfig{})
	c := &collect{}
	for i := 0; i < 5; i++ {
		p.OnAccess(smsAccess(0x40, mem.Addr(0x10000)+7), c.issue)
	}
	if len(p.agt) != 0 {
		t.Error("repeated same-line accesses promoted to AGT")
	}
	if len(p.filter) != 1 {
		t.Errorf("filter has %d entries", len(p.filter))
	}
}

func TestSMSGenerationEndsOnAGTEviction(t *testing.T) {
	p := NewSMS(SMSConfig{AGTEntries: 2})
	c := &collect{}
	// Three concurrent generations with 2 AGT entries: the LRU one is
	// committed to the PHT on eviction.
	for i := 0; i < 3; i++ {
		base := mem.Addr(0x10000 + i*0x10000)
		touchRegion(p, c, 0x40, base, []int{0, 4})
	}
	// Region 0's generation must have been committed: a new region with
	// the same trigger predicts offset 4.
	c.lines = nil
	p.OnAccess(smsAccess(0x40, mem.Addr(0x90000)), c.issue)
	if len(c.lines) != 1 || c.lines[0] != mem.LineOf(mem.Addr(0x90000)+4*mem.LineSize) {
		t.Errorf("issued %v", c.lines)
	}
}

func TestSMSPatternUpdatedOnRetrain(t *testing.T) {
	p := NewSMS(SMSConfig{})
	c := &collect{}
	regionA := mem.Addr(0x10000)
	touchRegion(p, c, 0x40, regionA, []int{0, 3})
	p.OnCacheEvict(mem.LineOf(regionA))

	// Re-train the same trigger with a different footprint.
	regionB := mem.Addr(0x20000)
	c.lines = nil
	touchRegion(p, c, 0x40, regionB, []int{0, 9})
	p.OnCacheEvict(mem.LineOf(regionB))

	c.lines = nil
	p.OnAccess(smsAccess(0x40, mem.Addr(0x30000)), c.issue)
	if len(c.lines) != 1 || c.lines[0] != mem.LineOf(mem.Addr(0x30000)+9*mem.LineSize) {
		t.Errorf("issued %v, want updated offset 9", c.lines)
	}
}

func TestSMSEvictOfUnknownRegionIsNoop(t *testing.T) {
	p := NewSMS(SMSConfig{})
	p.OnCacheEvict(12345) // must not panic
}

func TestSMSStorageBitsTableIII(t *testing.T) {
	// Table III: (5+48+36)*32 + (5+48+36+16)*32 + (16+48+5)*512
	// = 2848 + 3360 + 35328 = 41536 bits ≈ 5KB.
	if got := NewSMS(SMSConfig{}).StorageBits(); got != 41536 {
		t.Errorf("StorageBits = %d, want 41536", got)
	}
}

func TestSMSPHTEviction(t *testing.T) {
	p := NewSMS(SMSConfig{PHTEntries: 1})
	c := &collect{}
	// Two triggers trained; with one PHT entry only the newest remains.
	touchRegion(p, c, 0xA, mem.Addr(0x10000), []int{0, 2})
	p.OnCacheEvict(mem.LineOf(mem.Addr(0x10000)))
	touchRegion(p, c, 0xB, mem.Addr(0x20000), []int{0, 5})
	p.OnCacheEvict(mem.LineOf(mem.Addr(0x20000)))

	c.lines = nil
	p.OnAccess(smsAccess(0xA, mem.Addr(0x30000)), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("evicted PHT entry predicted: %v", c.lines)
	}
	c.lines = nil
	p.OnAccess(smsAccess(0xB, mem.Addr(0x40000)), c.issue)
	if len(c.lines) != 1 {
		t.Errorf("surviving PHT entry missing: %v", c.lines)
	}
}

func TestSMSReset(t *testing.T) {
	p := NewSMS(SMSConfig{})
	c := &collect{}
	touchRegion(p, c, 0x40, mem.Addr(0x10000), []int{0, 3})
	p.OnCacheEvict(mem.LineOf(mem.Addr(0x10000)))
	p.Reset()
	c.lines = nil
	p.OnAccess(smsAccess(0x40, mem.Addr(0x20000)), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("reset did not clear the PHT: %v", c.lines)
	}
}

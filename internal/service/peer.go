package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	apiv1 "cbws/api/v1"
	"cbws/internal/cluster"
	"cbws/internal/harness"
)

// The federated result cache: before simulating, a worker asks its
// siblings for the job's content address. Any replica that ever
// computed (or itself peer-fetched) the key serves the exact bytes,
// so the fleet-wide cache is the union of every worker's cache and a
// key is simulated at most once per fleet, not once per worker.
//
// The protocol is nothing beyond the public api/v1 surface: a plain
// GET /v1/results/{key} against each sibling in ring order. That
// works because the key embeds the code version and the full effective
// config — a sibling on a different build simply does not have the
// key, so whatever a peer serves for it is, by construction, the bytes
// this worker would have computed.

// peerFetcher holds the sibling topology of one worker.
type peerFetcher struct {
	ring    *cluster.Ring
	clients map[string]*apiv1.Client
}

// newPeerFetcher builds the sibling ring. peers are base URLs with
// self already filtered out (cbwsd does that from -advertise).
func newPeerFetcher(peers []string, timeout time.Duration) (*peerFetcher, error) {
	if len(peers) == 0 {
		return nil, nil
	}
	ring, err := cluster.NewRing(peers, 0)
	if err != nil {
		return nil, err
	}
	p := &peerFetcher{ring: ring, clients: make(map[string]*apiv1.Client, len(peers))}
	for _, u := range ring.Nodes() {
		c := apiv1.NewClient(u)
		// Peer probes sit on the job path: a slow or dead sibling must
		// cost bounded latency before the worker falls back to
		// simulating locally.
		c.HTTP = &http.Client{Timeout: timeout}
		p.clients[c.Base] = c
	}
	return p, nil
}

// tryPeerFetch attempts to serve job j from a sibling's cache,
// storing the fetched bytes under the job's content address on
// success. Siblings are probed in the key's ring order — the same
// order clients route by, so the worker most likely to have computed
// the key is asked first. Counter semantics: hits count jobs served by
// a peer, misses count per-sibling 404 probes, errors count transport
// failures and responses that fail validation.
func (s *Service) tryPeerFetch(j *Job) bool {
	p := s.peers
	if p == nil {
		return false
	}
	for _, url := range p.ring.Sequence(j.Key) {
		data, err := p.clients[url].Result(j.Key)
		if err != nil {
			var apiErr *apiv1.Error
			if errors.As(err, &apiErr) {
				s.counters.peerMisses.Add(1)
			} else {
				s.counters.peerErrors.Add(1)
			}
			continue
		}
		// Validate before caching: a sibling answering the right key with
		// a torn or foreign body must never poison the local cache.
		rec := &harness.RunRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			s.counters.peerErrors.Add(1)
			continue
		}
		if err := rec.Validate(); err != nil {
			s.counters.peerErrors.Add(1)
			continue
		}
		if rec.Workload != j.Spec.Workload || rec.Prefetcher != j.Spec.Prefetcher {
			s.counters.peerErrors.Add(1)
			continue
		}
		meta := CacheMeta{Workload: j.Spec.Workload, Prefetcher: j.Spec.Prefetcher}
		if err := s.cache.Put(j.Key, meta, data); err != nil {
			s.counters.peerErrors.Add(1)
			return false // local disk trouble; let the simulation path report it
		}
		s.counters.peerHits.Add(1)
		return true
	}
	return false
}

package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	t.Parallel()
	cases := []struct {
		addr Addr
		want LineAddr
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{0xFE50, 0x3F9},
		{0x4800, 0x120},
		{0x7FE0, 0x1FF},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.want))
		}
	}
}

func TestLineByteRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(l uint32) bool {
		line := LineAddr(l)
		return LineOf(line.Byte()) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineOfIsMonotoneAndBlocky(t *testing.T) {
	t.Parallel()
	// Property: all addresses within one line map to the same line, and
	// the next line starts exactly LineSize bytes later.
	f := func(a uint32) bool {
		base := Addr(a) & ^Addr(LineSize-1)
		l := LineOf(base)
		for off := Addr(0); off < LineSize; off++ {
			if LineOf(base+off) != l {
				return false
			}
		}
		return LineOf(base+LineSize) == l+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddDelta(t *testing.T) {
	t.Parallel()
	l := LineAddr(100)
	if got := l.Add(5); got != 105 {
		t.Errorf("Add(5) = %d", got)
	}
	if got := l.Add(-5); got != 95 {
		t.Errorf("Add(-5) = %d", got)
	}
	if got := LineAddr(105).Delta(l); got != 5 {
		t.Errorf("Delta = %d, want 5", got)
	}
	if got := l.Delta(LineAddr(105)); got != -5 {
		t.Errorf("Delta = %d, want -5", got)
	}
}

func TestAddDeltaInverse(t *testing.T) {
	t.Parallel()
	f := func(a uint32, d int32) bool {
		l := LineAddr(a)
		return l.Add(int64(d)).Delta(l) == int64(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionConfig(t *testing.T) {
	t.Parallel()
	rc := RegionConfig{SizeBytes: 2 << 10}
	if got := rc.LinesPerRegion(); got != 32 {
		t.Fatalf("LinesPerRegion = %d, want 32", got)
	}
	if got := rc.RegionOf(0); got != 0 {
		t.Errorf("RegionOf(0) = %d", got)
	}
	if got := rc.RegionOf(2047); got != 0 {
		t.Errorf("RegionOf(2047) = %d", got)
	}
	if got := rc.RegionOf(2048); got != 1 {
		t.Errorf("RegionOf(2048) = %d", got)
	}
	if got := rc.OffsetOf(2048 + 3*64 + 7); got != 3 {
		t.Errorf("OffsetOf = %d, want 3", got)
	}
	if got := rc.Base(2); got != 4096 {
		t.Errorf("Base(2) = %d", got)
	}
	if got := rc.LineAt(1, 5); got != LineOf(2048+5*64) {
		t.Errorf("LineAt = %v", got)
	}
}

func TestRegionOffsetConsistency(t *testing.T) {
	t.Parallel()
	rc := RegionConfig{SizeBytes: 2 << 10}
	f := func(a uint32) bool {
		addr := Addr(a)
		r := rc.RegionOf(addr)
		off := rc.OffsetOf(addr)
		// Reconstructing the line from (region, offset) must match
		// the line of the original address.
		return rc.LineAt(r, off) == LineOf(addr) && off >= 0 && off < rc.LinesPerRegion()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	t.Parallel()
	for _, v := range []uint64{1, 2, 4, 64, 1 << 20} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []uint64{0, 3, 6, 63, 65, 1<<20 + 1} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	t.Parallel()
	cases := map[uint64]uint{1: 0, 2: 1, 3: 1, 4: 2, 64: 6, 1 << 20: 20}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Errorf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestLineString(t *testing.T) {
	t.Parallel()
	if s := LineAddr(0x3F9).String(); s != "L0x3f9" {
		t.Errorf("String = %q", s)
	}
}

package check

import (
	"sort"

	"cbws/internal/mem"
	"cbws/internal/prefetch"
)

// RefGazeConfig mirrors learned.GazeConfig. Zero values are NOT
// defaulted here: the differential tests construct both sides from one
// explicit parameter set.
type RefGazeConfig struct {
	RegionBytes    int
	ActiveEntries  int
	PatternEntries int
	OrderLines     int
	ConfMax        int8
	ConfThreshold  int8
}

// RefGazeStats mirrors learned.GazeStats field for field.
type RefGazeStats struct {
	Generations       uint64
	SingleLine        uint64
	PatternsLearned   uint64
	PatternsConfirmed uint64
	PatternsDiverged  uint64
	Replays           uint64
	LinesPrefetched   uint64
}

// refGazeActive is one in-flight region generation.
type refGazeActive struct {
	replaying bool
	pc        uint64
	off1      int16
	off2      int16 // -1 until the second distinct line
	footprint map[int16]bool
	order     []uint8
	lru       uint64
}

// refGazePattern is one learned pattern, keyed by table row.
type refGazePattern struct {
	tag       uint32
	footprint map[int16]bool
	order     []uint8
	conf      int8
}

// RefGaze is the naive reference for the Gaze-style spatial
// prefetcher: active generations live in a map keyed by region number
// (capacity enforced by a min-LRU scan over unique ticks), footprints
// are maps instead of bitmaps, and the pattern table is a map keyed by
// row index. The trigger-pair signature, confidence training and
// order-then-ascending replay re-implement the production spec
// directly, so the issued prefetch stream and statistics must be
// bit-identical to learned.Gaze configured with the same parameters.
type RefGaze struct {
	cfg         RefGazeConfig
	regionLines int
	regionShift uint

	active   map[uint64]*refGazeActive
	patterns map[uint32]*refGazePattern

	tick uint64

	Stats RefGazeStats
}

// NewRefGaze builds the reference prefetcher.
func NewRefGaze(cfg RefGazeConfig) *RefGaze {
	g := &RefGaze{cfg: cfg}
	g.Reset()
	return g
}

// Reset returns the prefetcher to power-on state.
func (g *RefGaze) Reset() {
	lines := g.cfg.RegionBytes >> 6
	if lines < 2 {
		lines = 2
	}
	if lines > 4096 {
		lines = 4096
	}
	shift := uint(0)
	for 1<<(shift+1) <= lines {
		shift++
	}
	g.regionShift = shift
	g.regionLines = 1 << shift
	g.active = make(map[uint64]*refGazeActive)
	g.patterns = make(map[uint32]*refGazePattern)
	g.tick = 0
	g.Stats = RefGazeStats{}
}

func refGazeSignature(pc uint64, off1, off2 int16) uint32 {
	s := (uint32(pc) ^ uint32(pc>>32)) * 0x9E3779B1
	s ^= uint32(uint16(off1)) * 0x85EBCA6B
	s = s<<9 | s>>23
	s ^= uint32(uint16(off2)) * 0xC2B2AE35
	return s
}

func sameFootprint(a, b map[int16]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// commit retires one generation into the pattern table, mirroring
// learned.Gaze.commit.
func (g *RefGaze) commit(region uint64) {
	e := g.active[region]
	delete(g.active, region)
	if e.off2 < 0 {
		g.Stats.SingleLine++
		return
	}
	g.Stats.Generations++
	s := refGazeSignature(e.pc, e.off1, e.off2)
	row := (s ^ s>>16) & uint32(g.cfg.PatternEntries-1)
	p, ok := g.patterns[row]
	if !ok || p.tag != s {
		g.patterns[row] = &refGazePattern{tag: s, footprint: e.footprint, order: e.order, conf: 1}
		g.Stats.PatternsLearned++
		return
	}
	if sameFootprint(p.footprint, e.footprint) {
		if p.conf < g.cfg.ConfMax {
			p.conf++
		}
		p.order = e.order
		g.Stats.PatternsConfirmed++
		return
	}
	g.Stats.PatternsDiverged++
	p.conf--
	if p.conf <= 0 {
		g.patterns[row] = &refGazePattern{tag: s, footprint: e.footprint, order: e.order, conf: 1}
		g.Stats.PatternsLearned++
	}
}

// evictLRU commits the least-recently-used generation (ticks are
// unique, so the victim is unambiguous even over map iteration).
func (g *RefGaze) evictLRU() {
	var victim uint64
	first := true
	for region, e := range g.active {
		if first || e.lru < g.active[victim].lru {
			victim, first = region, false
		}
	}
	g.commit(victim)
}

// replay mirrors learned.Gaze.replay: ordered touches first (skipping
// the trigger pair), then the remaining footprint in ascending order.
func (g *RefGaze) replay(e *refGazeActive, p *refGazePattern, base mem.LineAddr, issue prefetch.IssueFunc) {
	g.Stats.Replays++
	inOrder := make(map[int16]bool, len(p.order))
	for _, o := range p.order {
		inOrder[int16(o)] = true
	}
	for _, o := range p.order {
		off := int16(o)
		if off == e.off1 || off == e.off2 {
			continue
		}
		issue(base.Add(int64(off)))
		g.Stats.LinesPrefetched++
	}
	rest := make([]int, 0, len(p.footprint))
	for off := range p.footprint {
		if off == e.off1 || off == e.off2 || inOrder[off] {
			continue
		}
		rest = append(rest, int(off))
	}
	sort.Ints(rest)
	for _, off := range rest {
		issue(base.Add(int64(off)))
		g.Stats.LinesPrefetched++
	}
}

// OnAccess mirrors learned.Gaze.OnAccess.
func (g *RefGaze) OnAccess(a prefetch.Access, issue prefetch.IssueFunc) {
	g.tick++
	line := a.Line
	region := uint64(line) >> g.regionShift
	off := int16(uint64(line) & uint64(g.regionLines-1))

	e, ok := g.active[region]
	if !ok {
		if !a.Miss() && !a.PfHit {
			return
		}
		if len(g.active) == g.cfg.ActiveEntries {
			g.evictLRU()
		}
		e = &refGazeActive{
			pc:        a.PC,
			off1:      off,
			off2:      -1,
			footprint: map[int16]bool{off: true},
			order:     []uint8{uint8(off)},
			lru:       g.tick,
		}
		g.active[region] = e
		return
	}

	e.lru = g.tick
	if !e.footprint[off] {
		e.footprint[off] = true
		if len(e.order) < g.cfg.OrderLines {
			e.order = append(e.order, uint8(off))
		}
		if e.off2 < 0 {
			e.off2 = off
			s := refGazeSignature(e.pc, e.off1, e.off2)
			row := (s ^ s>>16) & uint32(g.cfg.PatternEntries-1)
			if p, ok := g.patterns[row]; ok && p.tag == s && p.conf >= g.cfg.ConfThreshold && !e.replaying {
				e.replaying = true
				base := mem.LineAddr(region << g.regionShift)
				g.replay(e, p, base, issue)
			}
		}
	}
}

// OnCacheEvict mirrors learned.Gaze.OnCacheEvict: an eviction from an
// active region ends that region's generation.
func (g *RefGaze) OnCacheEvict(line mem.LineAddr) {
	region := uint64(line) >> g.regionShift
	if _, ok := g.active[region]; ok {
		g.commit(region)
	}
}

package batchalias

// stasher documents a waiver: the producer of this one sink is known
// to hand over ownership (it never reuses the batch).
type stasher struct{ saved []Ev }

func (s *stasher) ConsumeBatch(batch []Ev) bool {
	//lint:ignore cbws/batchalias producer hands over ownership and never reuses this batch
	s.saved = batch
	return true
}

// Package debugsrv serves the standard Go diagnostics endpoints —
// /debug/pprof/* (CPU, heap, goroutine profiles) and /debug/vars
// (expvar, including memstats) — for the CLIs' opt-in -debug-addr flag
// and as a mountable handler for long-running servers (cbwsd).
//
// The handlers are registered on a private mux, never on
// http.DefaultServeMux, so embedding them in another server cannot
// collide with (or leak through) the global mux. Start returns a
// handle whose Shutdown tears the listener down; the legacy Serve
// keeps the CLIs' fire-and-forget behaviour.
package debugsrv

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the diagnostics mux: /debug/pprof/* and /debug/vars.
// It is a fresh mux per call, safe to mount under another server's
// routing table.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Server is a running diagnostics listener.
type Server struct {
	addr string
	srv  *http.Server
	done chan struct{}
}

// Start begins serving the diagnostics mux on addr (e.g. ":6060" or
// "127.0.0.1:0") and returns a handle exposing the bound address and a
// Shutdown method. Unlike the old package-global listener, the
// goroutine exits when Shutdown completes.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugsrv: %w", err)
	}
	s := &Server{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler()},
		done: make(chan struct{}),
	}
	//lint:ignore cbws/golifecycle joined by Server.Shutdown, which blocks on s.done until this goroutine exits
	go func() {
		defer close(s.done)
		// Serve returns ErrServerClosed after Shutdown; any other error
		// has nowhere useful to go for a best-effort diagnostics server.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.addr }

// Shutdown gracefully stops the server: it stops accepting connections,
// waits for in-flight requests up to the context deadline, and waits
// for the serve goroutine to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}

// Serve starts the diagnostics server on addr and returns the bound
// address. The server lives until the process exits — the historical
// contract of the CLIs' -debug-addr flag, which needs no teardown.
func Serve(addr string) (string, error) {
	s, err := Start(addr)
	if err != nil {
		return "", err
	}
	return s.Addr(), nil
}

package atomicdiscipline

import "sync/atomic"

func suppressedMix(c *counters) int64 {
	atomic.AddInt64(&c.n, 1)
	//lint:ignore cbws/atomicdiscipline single-goroutine init path, no concurrent access yet
	return c.n
}

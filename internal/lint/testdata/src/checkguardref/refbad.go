// Package check mirrors the repo's check package name so the
// reference-model import rule applies to the ref*.go files here.
package check

import (
	_ "cbws/internal/cache"  // want `reference model imports optimized package`
	_ "cbws/internal/engine" // want `reference model imports optimized package`
)

package harness

// Validation tests: the paper's qualitative claims, asserted at reduced
// scale. These are the repository's core guarantees — if a refactor
// breaks one of them, the reproduction no longer reproduces.

import (
	"testing"

	"cbws/internal/stats"
	"cbws/internal/workload"
)

// valMatrix is shared across validation tests (memoized simulations).
var valMatrix = NewMatrix(valOptions())

func valOptions() Options {
	opts := DefaultOptions()
	opts.Sim.MaxInstructions = 1_200_000
	opts.Sim.WarmupInstructions = 400_000
	opts.Parallel = 8
	return opts
}

func metricsFor(t *testing.T, wl, pf string) stats.Metrics {
	t.Helper()
	spec, ok := workload.ByName(wl)
	if !ok {
		t.Fatalf("unknown workload %q", wl)
	}
	f, ok := FactoryByName(pf)
	if !ok {
		t.Fatalf("unknown prefetcher %q", pf)
	}
	r, err := valMatrix.Get(spec, f)
	if err != nil {
		t.Fatal(err)
	}
	return r.Metrics
}

// TestValidationHybridBeatsSMSOnAverage asserts the headline result: the
// integrated CBWS+SMS prefetcher outperforms standalone SMS by a clear
// margin over the memory-intensive group (paper: 1.31x).
func TestValidationHybridBeatsSMSOnAverage(t *testing.T) {
	var speedups []float64
	for _, spec := range workload.MemoryIntensive() {
		sms := metricsFor(t, spec.Name, "sms")
		hybrid := metricsFor(t, spec.Name, "cbws+sms")
		if sms.IPC() > 0 {
			speedups = append(speedups, hybrid.IPC()/sms.IPC())
		}
	}
	geo := stats.GeoMean(speedups)
	if geo < 1.15 {
		t.Errorf("CBWS+SMS geomean speedup over SMS = %.3f, want >= 1.15 (paper: 1.31)", geo)
	}
}

// TestValidationHybridNeverFarBehindSMS asserts the fallback property:
// integrating CBWS must not lose much on any individual benchmark
// (paper: worst case ~5% on bzip2).
func TestValidationHybridNeverFarBehindSMS(t *testing.T) {
	for _, spec := range workload.MemoryIntensive() {
		sms := metricsFor(t, spec.Name, "sms")
		hybrid := metricsFor(t, spec.Name, "cbws+sms")
		if sms.IPC() == 0 {
			continue
		}
		// lu-ncb is the known worst case (SMS's region prefetch is
		// ideal for its 2KB blocks while the CBWS add-on contends for
		// MSHRs): ~0.75x at full scale and at this reduced window. Anything below 0.70 means the fallback is broken.
		if ratio := hybrid.IPC() / sms.IPC(); ratio < 0.70 {
			t.Errorf("%s: CBWS+SMS at %.2fx of SMS, fallback property violated", spec.Name, ratio)
		}
	}
}

// TestValidationBlockStructuredWins asserts the paper's per-benchmark
// claim that CBWS eliminates most misses in block-structured kernels
// (sgemm, radix, nw, stencil).
func TestValidationBlockStructuredWins(t *testing.T) {
	for _, wl := range []string{"sgemm-medium", "radix-simlarge", "nw", "stencil-default"} {
		none := metricsFor(t, wl, "none")
		cbws := metricsFor(t, wl, "cbws")
		if cbws.MPKI() > none.MPKI()*0.35 {
			t.Errorf("%s: CBWS MPKI %.2f vs none %.2f — expected >65%% reduction",
				wl, cbws.MPKI(), none.MPKI())
		}
	}
}

// TestValidationHistoUnpredictable asserts Figure 16's point: the
// histogram's data-dependent bin addresses defeat differential
// prediction, so standalone CBWS is inert on histo and the hybrid falls
// back to SMS.
func TestValidationHistoUnpredictable(t *testing.T) {
	none := metricsFor(t, "histo-large", "none")
	cbws := metricsFor(t, "histo-large", "cbws")
	sms := metricsFor(t, "histo-large", "sms")
	hybrid := metricsFor(t, "histo-large", "cbws+sms")
	if cbws.MPKI() < none.MPKI()*0.9 {
		t.Errorf("CBWS should not cover histo: %.2f vs none %.2f", cbws.MPKI(), none.MPKI())
	}
	if hybrid.MPKI() > sms.MPKI()*1.15 {
		t.Errorf("hybrid should ride SMS on histo: %.2f vs sms %.2f", hybrid.MPKI(), sms.MPKI())
	}
}

// TestValidationSoplexDivergence asserts the soplex result: despite a
// skewed differential distribution (Figure 5), branch divergence keeps
// CBWS from reducing soplex's misses appreciably.
func TestValidationSoplexDivergence(t *testing.T) {
	none := metricsFor(t, "450.soplex-ref", "none")
	cbws := metricsFor(t, "450.soplex-ref", "cbws")
	if cbws.MPKI() < none.MPKI()*0.85 {
		t.Errorf("CBWS reduced soplex MPKI %.2f -> %.2f; the divergence failure mode is gone",
			none.MPKI(), cbws.MPKI())
	}
}

// TestValidationBzip2Overflow asserts the 16-line trace-limit behaviour:
// bzip2's large blocks overflow the CBWS buffer, leaving standalone CBWS
// at the no-prefetch level.
func TestValidationBzip2Overflow(t *testing.T) {
	none := metricsFor(t, "401.bzip2-source", "none")
	cbws := metricsFor(t, "401.bzip2-source", "cbws")
	if cbws.MPKI() < none.MPKI()*0.9 {
		t.Errorf("CBWS covered bzip2 (%.2f vs %.2f) despite 16-line overflow",
			cbws.MPKI(), none.MPKI())
	}
}

// TestValidationCBWSAccuracy asserts the Figure 13 accuracy claim:
// standalone CBWS wastes less traffic than SMS relative to its issue
// volume on the MI group average.
func TestValidationCBWSAccuracy(t *testing.T) {
	var cbwsWrong, smsWrong []float64
	for _, spec := range workload.MemoryIntensive() {
		cbwsWrong = append(cbwsWrong, metricsFor(t, spec.Name, "cbws").WrongFrac())
		smsWrong = append(smsWrong, metricsFor(t, spec.Name, "sms").WrongFrac())
	}
	// At this reduced window the end-of-run drain charges CBWS's
	// multi-step lookahead (up to 4 iterations of in-flight prefetches)
	// disproportionately, so allow a 25% tolerance; at the full
	// cmd/figures scale CBWS is strictly more accurate (8.3% vs 10.7%).
	if stats.Mean(cbwsWrong) > stats.Mean(smsWrong)*1.25 {
		t.Errorf("CBWS wrong %.3f far exceeds SMS %.3f: accuracy claim violated",
			stats.Mean(cbwsWrong), stats.Mean(smsWrong))
	}
}

// TestValidationStorageBudgets asserts the Table III budgets.
func TestValidationStorageBudgets(t *testing.T) {
	want := map[string]uint64{
		"stride":    18432,
		"ghb-g/dc":  18432,
		"ghb-pc/dc": 30720,
		"sms":       41536,
		"cbws":      8080,
	}
	for name, bits := range want {
		f, _ := FactoryByName(name)
		if got := f.New().StorageBits(); got != bits {
			t.Errorf("%s: %d bits, want %d", name, got, bits)
		}
	}
}

// TestValidationRegularGroupInsensitive asserts the Figure 14b shape:
// prefetching moves the compute-bound group only marginally.
func TestValidationRegularGroupInsensitive(t *testing.T) {
	for _, spec := range workload.Regular() {
		sms := metricsFor(t, spec.Name, "sms")
		hybrid := metricsFor(t, spec.Name, "cbws+sms")
		if sms.IPC() == 0 {
			continue
		}
		ratio := hybrid.IPC() / sms.IPC()
		if ratio < 0.60 || ratio > 1.70 {
			t.Errorf("%s: hybrid/SMS = %.2f, regular group should be near 1", spec.Name, ratio)
		}
	}
}

// TestValidationLoopResidency asserts Figure 1's premise: the MI group
// spends the bulk of its runtime in annotated tight loops.
func TestValidationLoopResidency(t *testing.T) {
	var fracs []float64
	for _, spec := range workload.MemoryIntensive() {
		fracs = append(fracs, metricsFor(t, spec.Name, "none").LoopFrac)
	}
	if avg := stats.Mean(fracs); avg < 0.70 {
		t.Errorf("loop residency = %.2f, the paper's >70%% premise is violated", avg)
	}
}

#!/usr/bin/env bash
# End-to-end smoke of the cbwsd streaming simulation mode:
#
#   1. start one cbwsd on an ephemeral port with a per-tenant quota of
#      one concurrent stream;
#   2. admission control: tenant-a's second concurrent open must be
#      rejected 429 with a Retry-After header, while tenant-b — a
#      different quota account on the same daemon — opens fine at the
#      same moment;
#   3. byte-identity: stream a tracegen-captured stencil-default trace
#      through cbwsctl at the daemon's full instruction budget; the
#      finalized record must land under the closed-job content address,
#      so the equivalent closed submit afterwards is a pure cache hit
#      (zero new misses) serving byte-identical result bytes;
#   4. SIGTERM drain with open streams: a fully-received but unclosed
#      stream is finalized into a persisted cache record, a half-fed
#      stream is canceled, and the daemon still exits 0 with a
#      persisted cache index.
#
# Run from the repository root: ./scripts/streaming_smoke.sh
set -euo pipefail

N=400000
WARMUP=100000

tmp="$(mktemp -d)"
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "streaming-smoke: building cbwsd, cbwsctl, tracegen"
go build -o "$tmp/cbwsd" ./cmd/cbwsd
go build -o "$tmp/cbwsctl" ./cmd/cbwsctl
go build -o "$tmp/tracegen" ./cmd/tracegen

echo "streaming-smoke: capturing stencil-default traces"
"$tmp/tracegen" -workload stencil-default -n "$N" -o "$tmp/full.cbwt" >/dev/null
"$tmp/tracegen" -workload stencil-default -n 100000 -o "$tmp/short.cbwt" >/dev/null

mkdir -p "$tmp/cache"
"$tmp/cbwsd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" -cache-dir "$tmp/cache" \
    -n "$N" -warmup "$WARMUP" -tenant-streams 1 2>"$tmp/cbwsd.log" &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "streaming-smoke: cbwsd died on startup:" >&2
        cat "$tmp/cbwsd.log" >&2
        exit 1
    fi
    sleep 0.1
done
[ -s "$tmp/addr" ] || { echo "streaming-smoke: cbwsd never published its address" >&2; exit 1; }
url="http://$(cat "$tmp/addr")"
echo "streaming-smoke: cbwsd on $url"

# expvar_counter NAME prints the daemon's current cbwsd.NAME value.
expvar_counter() {
    curl -sf "$url/debug/vars" | grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

# open_stream TENANT: POST an open request, print "HTTPCODE ID RETRYAFTER".
open_stream() {
    local out code body id retry
    out="$tmp/open-resp"
    code="$(curl -s -o "$out" -D "$tmp/open-hdr" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        -d "{\"tenant\":\"$1\",\"workload\":\"stencil-default\",\"prefetcher\":\"cbws\"}" \
        "$url/v1/streams")"
    id="$(grep -o '"id": *"[^"]*"' "$out" | head -1 | sed 's/.*"\([^"]*\)"$/\1/' || true)"
    retry="$(grep -i '^retry-after:' "$tmp/open-hdr" | tr -dc '0-9' || true)"
    echo "$code ${id:-none} ${retry:-none}"
}

echo "streaming-smoke: tenant quota: second concurrent open must be 429 + Retry-After"
read -r code_a1 id_a1 _ <<<"$(open_stream tenant-a)"
if [ "$code_a1" != "201" ]; then
    echo "streaming-smoke: tenant-a first open got $code_a1, want 201" >&2
    exit 1
fi
read -r code_a2 _ retry_a2 <<<"$(open_stream tenant-a)"
if [ "$code_a2" != "429" ] || [ "$retry_a2" = "none" ]; then
    echo "streaming-smoke: tenant-a over-quota open got $code_a2 (Retry-After: $retry_a2), want 429 with Retry-After" >&2
    exit 1
fi
read -r code_b1 id_b1 _ <<<"$(open_stream tenant-b)"
if [ "$code_b1" != "201" ]; then
    echo "streaming-smoke: tenant-b open got $code_b1 while tenant-a was over quota, want 201" >&2
    exit 1
fi
rejected="$(expvar_counter streams_rejected_429)"
if [ "$rejected" -lt 1 ]; then
    echo "streaming-smoke: streams_rejected_429 is $rejected, want >= 1" >&2
    exit 1
fi
curl -sf -X DELETE "$url/v1/streams/$id_a1" >/dev/null
curl -sf -X DELETE "$url/v1/streams/$id_b1" >/dev/null
echo "streaming-smoke: quota rejection OK (tenant-b unaffected)"

echo "streaming-smoke: streaming $N-instruction trace, expecting closed-job key adoption"
misses_before="$(expvar_counter cache_misses)"
"$tmp/cbwsctl" -server "$url" stream -tenant tenant-a \
    -workload stencil-default -prefetcher cbws \
    -n "$N" -warmup "$WARMUP" -f "$tmp/full.cbwt" >"$tmp/stream.out"
stream_key="$(awk '{print $1}' "$tmp/stream.out")"
[ -n "$stream_key" ] || { echo "streaming-smoke: no stream result key in: $(cat "$tmp/stream.out")" >&2; exit 1; }
"$tmp/cbwsctl" -server "$url" result -o "$tmp/stream-record.json" "$stream_key"

echo "streaming-smoke: equivalent closed job must be served from cache"
"$tmp/cbwsctl" -server "$url" submit -workload stencil-default -prefetcher cbws -wait \
    >"$tmp/submit.out"
submit_key="$(awk '{print $1}' "$tmp/submit.out")"
misses_after="$(expvar_counter cache_misses)"
if [ "$submit_key" != "$stream_key" ]; then
    echo "streaming-smoke: closed-job key $submit_key != stream key $stream_key" >&2
    exit 1
fi
if [ "$misses_after" -ne "$misses_before" ]; then
    echo "streaming-smoke: closed job after stream caused $((misses_after - misses_before)) cache misses, want 0" >&2
    exit 1
fi
"$tmp/cbwsctl" -server "$url" result -o "$tmp/submit-record.json" "$submit_key"
cmp "$tmp/stream-record.json" "$tmp/submit-record.json"
echo "streaming-smoke: stream and closed-job results byte-identical under $stream_key"

# send_chunks ID DIR: POST every chunk file in DIR in order, honoring
# 429/413 backpressure the way the Go client does.
send_chunks() {
    local id="$1" dir="$2" piece code
    for piece in "$dir"/*; do
        for _ in $(seq 1 100); do
            code="$(curl -s -o /dev/null -w '%{http_code}' \
                --data-binary "@$piece" \
                -H 'Content-Type: application/octet-stream' \
                "$url/v1/streams/$id/chunks")"
            case "$code" in
            200) break ;;
            429 | 413) sleep 0.1 ;;
            *)
                echo "streaming-smoke: chunk POST got $code" >&2
                return 1
                ;;
            esac
        done
        [ "$code" = "200" ] || { echo "streaming-smoke: chunk never accepted" >&2; return 1; }
    done
}

echo "streaming-smoke: SIGTERM drain must finalize a complete stream and cancel a half-fed one"
# Stream 1: the whole short trace (terminator included, under the
# daemon's instruction budget) but never closed — drain must finalize
# it into a cache record.
read -r code id_fin _ <<<"$(open_stream tenant-a)"
[ "$code" = "201" ] || { echo "streaming-smoke: finalize-stream open got $code" >&2; exit 1; }
mkdir -p "$tmp/pieces-full"
split -b 49152 "$tmp/short.cbwt" "$tmp/pieces-full/p"
send_chunks "$id_fin" "$tmp/pieces-full"
# Stream 2: only the first piece (mid-trace, no terminator) — drain
# must cancel it.
read -r code id_cancel _ <<<"$(open_stream tenant-b)"
[ "$code" = "201" ] || { echo "streaming-smoke: cancel-stream open got $code" >&2; exit 1; }
mkdir -p "$tmp/pieces-half"
cp "$(ls "$tmp/pieces-full"/* | head -1)" "$tmp/pieces-half/p"
send_chunks "$id_cancel" "$tmp/pieces-half"

records_before="$(ls "$tmp/cache" | grep -v '^index\.json$' | grep -c '\.json$' || true)"
kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
daemon_pid=""
if [ "$drain_status" -ne 0 ]; then
    echo "streaming-smoke: cbwsd exited $drain_status after SIGTERM, want 0:" >&2
    cat "$tmp/cbwsd.log" >&2
    exit 1
fi
if [ ! -f "$tmp/cache/index.json" ]; then
    echo "streaming-smoke: drain did not persist the cache index" >&2
    exit 1
fi
records_after="$(ls "$tmp/cache" | grep -v '^index\.json$' | grep -c '\.json$' || true)"
# The delta is drain-finalized streams only: exactly one (the complete
# stream; the half-fed one must not leave a record).
if [ "$((records_after - records_before))" -ne 1 ]; then
    echo "streaming-smoke: drain persisted $((records_after - records_before)) new records, want exactly 1" >&2
    ls "$tmp/cache" >&2
    exit 1
fi
echo "streaming-smoke: PASS (quota 429, byte-identical stream result, finalize-or-cancel drain)"
